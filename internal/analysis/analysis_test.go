package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixturePath is a fake module prefix; the trailing elements control which
// package-gated rules apply to a fixture directory.
const fixturePath = "example.com/fixture"

// wantRe matches expectation comments: "// want rule [rule...]".
var wantRe = regexp.MustCompile(`\bwant((?: [a-z]+)+)\s*$`)

// expectations returns the "file:line rule" keys declared by // want
// comments in the fixture package.
func expectations(t *testing.T, pkg *Package) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, rule := range strings.Fields(m[1]) {
					out[fmt.Sprintf("%s:%d %s", filepath.Base(pos.Filename), pos.Line, rule)] = true
				}
			}
		}
	}
	return out
}

// checkFixture loads dir under importPath, runs the full suite, and
// compares findings against the fixture's // want comments.
func checkFixture(t *testing.T, dir, importPath string) {
	t.Helper()
	pkg, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	got := map[string]bool{}
	for _, f := range RunAnalyzers([]*Package{pkg}, All()) {
		got[fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)] = true
	}
	want := expectations(t, pkg)
	for key := range want {
		if !got[key] {
			t.Errorf("missing finding %s", key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected finding %s", key)
		}
	}
}

// checkSilent loads dir under importPath and asserts the given analyzer
// reports nothing — the package-gate test for path-scoped rules.
func checkSilent(t *testing.T, dir, importPath string, a *Analyzer) {
	t.Helper()
	pkg, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if got := RunAnalyzers([]*Package{pkg}, []*Analyzer{a}); len(got) != 0 {
		t.Fatalf("%s under %s: want no findings, got %v", a.Name, importPath, got)
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, "testdata/determinism", fixturePath+"/internal/anneal")
}

// TestDeterminismGate proves the rule only applies inside the packages
// bound by the determinism contract.
func TestDeterminismGate(t *testing.T) {
	checkSilent(t, "testdata/determinism", fixturePath+"/internal/codegen", Determinism)
}

func TestRawGoFixture(t *testing.T) {
	checkFixture(t, "testdata/rawgo", fixturePath+"/internal/core")
}

// TestRawGoGate proves the pool layers themselves may spawn goroutines,
// including the telemetry layer's background debug-server loop.
func TestRawGoGate(t *testing.T) {
	for _, path := range []string{"internal/parallel", "internal/fleet", "internal/measure", "internal/telemetry"} {
		checkSilent(t, "testdata/rawgo", fixturePath+"/"+path, RawGo)
	}
}

// TestTelemetryClockFixture exercises the clock carve-out: inside
// internal/telemetry, wall-clock reads in methods of Clock-implementing
// types pass; reads anywhere else in the package are findings.
func TestTelemetryClockFixture(t *testing.T) {
	checkFixture(t, "testdata/telemetry", fixturePath+"/internal/telemetry")
}

// TestTelemetryClockGate proves the carve-out exists only in
// internal/telemetry: the same fixture loaded as another deterministic
// package flags the Clock implementation's time.Now too (one finding
// beyond the fixture's // want set, on the sysClock.Now line).
func TestTelemetryClockGate(t *testing.T) {
	pkg, err := LoadDir("testdata/telemetry", fixturePath+"/internal/anneal")
	if err != nil {
		t.Fatal(err)
	}
	got := RunAnalyzers([]*Package{pkg}, []*Analyzer{Determinism})
	// Only the determinism expectations matter here: the fixture also
	// carries a ctxflow want (internal/telemetry is Ctx-scoped), but this
	// gate runs the determinism rule alone.
	want := map[string]bool{}
	for key := range expectations(t, pkg) {
		if strings.HasSuffix(key, " determinism") {
			want[key] = true
		}
	}
	if len(got) != len(want)+1 {
		t.Fatalf("outside the seam package: %d findings, want %d (carve-out must not apply):\n%v",
			len(got), len(want)+1, got)
	}
	seamLine := false
	for _, f := range got {
		if strings.Contains(f.Msg, "time.Now") && !want[fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)] {
			seamLine = true
		}
	}
	if !seamLine {
		t.Fatalf("extra finding is not the Clock implementation's time.Now: %v", got)
	}
}

// TestCfgDefaultFixture includes the PR 2 regression shape: a Config
// parameter wholesale-replaced by DefaultConfig() after a partial check.
func TestCfgDefaultFixture(t *testing.T) {
	checkFixture(t, "testdata/cfgdefault", fixturePath+"/internal/tune")
}

func TestFloatEqFixture(t *testing.T) {
	checkFixture(t, "testdata/floateq", fixturePath+"/internal/calc")
}

func TestErrDropFixture(t *testing.T) {
	checkFixture(t, "testdata/errdrop", fixturePath+"/internal/drop")
}

// TestIgnoreFixture exercises the escape-hatch policy: same-line and
// line-above suppression, the mandatory reason, and stale-directive
// reporting.
func TestIgnoreFixture(t *testing.T) {
	checkFixture(t, "testdata/ignore", fixturePath+"/internal/util")
}

func TestCtxFlowFixture(t *testing.T) {
	checkFixture(t, "testdata/ctxflow", fixturePath+"/internal/measure")
}

// TestCtxFlowGate proves the rule applies only in the context-scoped
// packages.
func TestCtxFlowGate(t *testing.T) {
	checkSilent(t, "testdata/ctxflow", fixturePath+"/internal/codegen", CtxFlow)
}

func TestLeakCheckFixture(t *testing.T) {
	checkFixture(t, "testdata/leakcheck", fixturePath+"/internal/fleet")
}

// TestLeakCheckGate proves the rule applies only inside the pool layers
// (outside them rawgo already forbids the goroutine altogether).
func TestLeakCheckGate(t *testing.T) {
	checkSilent(t, "testdata/leakcheck", fixturePath+"/internal/codegen", LeakCheck)
}

func TestLockCheckFixture(t *testing.T) {
	checkFixture(t, "testdata/lockcheck", fixturePath+"/internal/tlog")
}

// TestLockCheckGate proves the rule applies only to the stateful
// lock-scoped packages.
func TestLockCheckGate(t *testing.T) {
	checkSilent(t, "testdata/lockcheck", fixturePath+"/internal/codegen", LockCheck)
}

func TestAllocPathFixture(t *testing.T) {
	checkFixture(t, "testdata/allocpath", fixturePath+"/internal/gbt")
}

// TestAllocPathGate proves the rule applies only to the hot packages.
func TestAllocPathGate(t *testing.T) {
	checkSilent(t, "testdata/allocpath", fixturePath+"/internal/codegen", AllocPath)
}

// TestSeededDefectCorpus replays one known past bug shape per new
// analyzer — defects that reached review (or production) before the rule
// existed. Each fixture is pinned under the import path whose contract it
// violated.
func TestSeededDefectCorpus(t *testing.T) {
	cases := []struct{ dir, path string }{
		{"testdata/seeded/drainleak", fixturePath + "/internal/measure"},
		{"testdata/seeded/retryloop", fixturePath + "/internal/fleet"},
		{"testdata/seeded/lockheld", fixturePath + "/internal/tlog"},
		{"testdata/seeded/fmtscore", fixturePath + "/internal/acq"},
	}
	for _, c := range cases {
		checkFixture(t, c.dir, c.path)
	}
}

// TestRunAnalyzersTimed checks the timing surface glint -v prints: one
// entry per analyzer, in suite order.
func TestRunAnalyzersTimed(t *testing.T) {
	pkg, err := LoadDir("testdata/rawgo", fixturePath+"/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	_, times := RunAnalyzersTimed([]*Package{pkg}, All())
	if len(times) != len(All()) {
		t.Fatalf("got %d rule times, want %d", len(times), len(All()))
	}
	for i, a := range All() {
		if times[i].Name != a.Name {
			t.Fatalf("times[%d] = %q, want %q", i, times[i].Name, a.Name)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want full suite", len(all), err)
	}
	two, err := ByName("determinism, rawgo")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("ByName accepted an unknown rule")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: "rawgo", Msg: "boom"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 12
	if got, want := f.String(), "a/b.go:12: [rawgo] boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestRepoIsClean runs the full suite over this repository — the same
// gate as `make lint`, enforced from the test tree as well so plain
// `go test ./...` catches contract regressions.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check is slow; run without -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 25 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	findings := RunAnalyzers(pkgs, All())
	var lines []string
	for _, f := range findings {
		lines = append(lines, f.String())
	}
	sort.Strings(lines)
	if len(findings) != 0 {
		t.Errorf("repo has %d unsuppressed findings:\n%s", len(findings), strings.Join(lines, "\n"))
	}
}
