package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces cancellation plumbing in the packages that talk to the
// outside world (Scope.Ctx: fleet, measure, rpc, cache). A long-running
// multi-tenant server can only shed abandoned work if every blocking
// operation sits under a caller-supplied context, so:
//
//  1. context.Background() and context.TODO() are forbidden — fresh roots
//     belong in package main, tests, and explicitly waived compat shims
//     (interface adapters whose ctx-less form is part of a frozen API);
//  2. blocking operations — dials (net.Dial*, net.Dialer methods),
//     synchronous RPC calls ((*rpc.Client).Call), time.Sleep, bare timer
//     waits, and channel sends/receives outside a select — must appear in
//     a function that threads a context.Context parameter (its own or an
//     enclosing closure's).
//
// Channel operations on channels declared in the same function body are
// exempt: a local semaphore or reply channel is created, bounded, and
// drained within one call frame, so there is nothing for a context to
// cancel. Select statements are exempt as a whole — a select either has a
// cancel/timeout arm or its absence is a leakcheck/lockcheck problem, not
// a plumbing one.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "require context.Context plumbing around blocking operations in fleet/measure/rpc/cache; confine context.Background to main, tests, and waived shims",
	Run:  runCtxFlow,
}

// blockingNetFuncs are the package-level net entry points that block on
// the wire.
var blockingNetFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialIP": true, "DialTCP": true,
	"DialUDP": true, "DialUnix": true,
}

func runCtxFlow(p *Pass) {
	if !inScope(p.Pkg.Path, Scope.Ctx) {
		return
	}
	// Command roots may build their own contexts (signal.NotifyContext
	// wraps context.Background by design), but a scoped main package —
	// cmd/glimpsetop's poll loop — still gets the blocking-op checks: its
	// waits must sit under the root it built.
	isMain := p.Pkg.Types.Name() == "main"
	for _, file := range p.Pkg.Files {
		exempt := selectCommNodes(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			v := &ctxVisitor{pass: p, exempt: exempt, fd: fd, allowRoots: isMain,
				hasCtx: []bool{funcTypeHasCtx(p, fd.Type)}}
			ast.Walk(v, fd.Body)
		}
	}
}

// selectCommNodes marks every node under a select communication clause:
// the comm op itself (send or receive, including a time.After bounding
// the wait) is the select's business, not ctxflow's.
func selectCommNodes(file *ast.File) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				if m != nil {
					out[m] = true
				}
				return true
			})
		}
		return true
	})
	return out
}

// ctxVisitor walks one function declaration, tracking whether the current
// closure chain has a context.Context parameter in scope.
type ctxVisitor struct {
	pass       *Pass
	exempt     map[ast.Node]bool
	fd         *ast.FuncDecl
	allowRoots bool   // package main: fresh context roots are fine
	hasCtx     []bool // one entry per enclosing func (decl + literals)
}

func (v *ctxVisitor) ctxInScope() bool {
	for _, has := range v.hasCtx {
		if has {
			return true
		}
	}
	return false
}

func (v *ctxVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		return nil
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		inner := &ctxVisitor{pass: v.pass, exempt: v.exempt, fd: v.fd, allowRoots: v.allowRoots,
			hasCtx: append(append([]bool(nil), v.hasCtx...), funcTypeHasCtx(v.pass, n.Type))}
		ast.Walk(inner, n.Body)
		return nil
	case *ast.CallExpr:
		v.checkCall(n)
	case *ast.SendStmt:
		if !v.exempt[n] && !v.ctxInScope() && !v.localChan(n.Chan) {
			v.pass.Reportf(n.Arrow, "channel send outside a select in a function without a context.Context parameter; thread a ctx so the wait is cancellable")
		}
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && !v.exempt[n] && !v.ctxInScope() && !v.localChan(n.X) {
			v.pass.Reportf(n.OpPos, "channel receive outside a select in a function without a context.Context parameter; thread a ctx so the wait is cancellable")
		}
	}
	return v
}

// checkCall flags context roots and ctx-less blocking calls.
func (v *ctxVisitor) checkCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := v.pass.Pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "context":
		if !v.allowRoots && sig != nil && sig.Recv() == nil && (fn.Name() == "Background" || fn.Name() == "TODO") {
			v.pass.Reportf(call.Pos(), "context.%s() starts a fresh root; accept the caller's ctx instead (fresh roots are confined to package main, tests, and waived compat shims)", fn.Name())
		}
	case "time":
		if sig != nil && sig.Recv() == nil {
			switch fn.Name() {
			case "Sleep":
				if !v.ctxInScope() {
					v.pass.Reportf(call.Pos(), "time.Sleep in a function without a context.Context parameter; thread a ctx and wait in a select with ctx.Done()")
				}
			case "After", "Tick":
				if !v.exempt[call] && !v.ctxInScope() {
					v.pass.Reportf(call.Pos(), "time.%s wait outside a select in a function without a context.Context parameter; thread a ctx so the wait is cancellable", fn.Name())
				}
			}
		}
	case "net":
		if !v.ctxInScope() && (sig != nil && sig.Recv() == nil && blockingNetFuncs[fn.Name()] ||
			sig != nil && sig.Recv() != nil && fn.Name() == "Dial" && typePathIs(sig.Recv().Type(), "net", "Dialer")) {
			v.pass.Reportf(call.Pos(), "net dial in a function without a context.Context parameter; use (net.Dialer).DialContext with a threaded ctx")
		}
	case "net/rpc":
		if !v.ctxInScope() && sig != nil && sig.Recv() != nil && fn.Name() == "Call" &&
			typePathIs(sig.Recv().Type(), "net/rpc", "Client") {
			v.pass.Reportf(call.Pos(), "synchronous rpc.Client.Call in a function without a context.Context parameter; issue Go() and select on ctx.Done()")
		}
	}
}

// localChan reports whether the channel expression resolves to a variable
// declared inside the body of the function declaration being analyzed
// (not a parameter): a purely local channel is created, bounded and
// drained in one frame.
func (v *ctxVisitor) localChan(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := identObj(v.pass, id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= v.fd.Body.Pos() && obj.Pos() <= v.fd.Body.End()
}

// funcTypeHasCtx reports whether the function type declares a
// context.Context parameter.
func funcTypeHasCtx(p *Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := p.Pkg.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	return typePathIs(t, "context", "Context")
}

// typePathIs reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func typePathIs(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}
