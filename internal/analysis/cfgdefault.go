package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CfgDefault catches the PR 2 config bug class: a function that takes a
// Config-typed parameter and, after noticing one unset field, replaces
// the whole value with DefaultConfig(), silently discarding every field
// the caller did set. The repo convention (anneal.Config.withDefaults)
// is to default non-positive fields individually.
var CfgDefault = &Analyzer{
	Name: "cfgdefault",
	Doc:  "forbid wholesale Default*Config() assignment to a Config-typed parameter",
	Run:  runCfgDefault,
}

func runCfgDefault(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			params := configParams(p, fn)
			if len(params) == 0 {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				assign, ok := n.(*ast.AssignStmt)
				if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
					return true
				}
				for i, lhs := range assign.Lhs {
					if star, ok := lhs.(*ast.StarExpr); ok {
						lhs = star.X // *cfg = Default...() on a *Config param
					}
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.Pkg.Info.Uses[id]
					if obj == nil || !params[obj] {
						continue
					}
					if name, ok := defaultCallName(p, assign.Rhs[i]); ok {
						p.Reportf(assign.Pos(),
							"wholesale %s = %s() discards every field the caller set; default non-positive fields individually (cf. anneal.Config.withDefaults)",
							id.Name, name)
					}
				}
				return true
			})
		}
	}
}

// configParams returns the parameter objects of fn whose type is a named
// struct called Config or *Config (any "...Config" name counts).
func configParams(p *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := p.Pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			t := obj.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || !strings.HasSuffix(named.Obj().Name(), "Config") {
				continue
			}
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				out[obj] = true
			}
		}
	}
	return out
}

// defaultCallName reports whether e is a call to a Default* constructor
// (DefaultConfig(), gbt.DefaultConfig(), ...), returning its name.
func defaultCallName(p *Pass, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		if _, isFunc := obj.(*types.Func); isFunc && strings.HasPrefix(obj.Name(), "Default") {
			return obj.Name(), true
		}
	}
	return "", false
}
