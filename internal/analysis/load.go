package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks module packages from source. Standard-library imports
// are resolved by the stdlib "source" importer (type-checking $GOROOT/src
// directly), so the loader needs no compiled export data, no network, and
// no external tooling. Test files are excluded: every rule in the suite
// applies to non-test code only, and excluding them keeps each package a
// single self-contained compilation unit.
type Loader struct {
	Fset    *token.FileSet
	modPath string
	root    string
	pkgs    map[string]*Package
	loading map[string]bool
	std     types.Importer
	ctx     build.Context
}

// stdImporter is the process-wide stdlib source importer. Type-checking
// $GOROOT/src once costs a couple of seconds; sharing the result across
// every Loader means the fixture tests and the repo-wide run pay it once
// instead of once per Loader. The importer caches internally but is not
// safe for concurrent use, hence the mutex. Standard-library positions
// land in stdFset rather than a Loader's own FileSet — harmless, since
// analyzers only render positions of module files they parsed themselves.
var (
	stdMu   sync.Mutex
	stdFset = token.NewFileSet()
	stdImp  = importer.ForCompiler(stdFset, "source", nil)
)

type lockedStdImporter struct{}

func (lockedStdImporter) Import(path string) (*types.Package, error) {
	stdMu.Lock()
	defer stdMu.Unlock()
	return stdImp.Import(path)
}

// NewLoader returns a Loader rooted at the module directory root. modPath
// may be empty, in which case it is read from root/go.mod.
func NewLoader(root, modPath string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if modPath == "" {
		modPath, err = modulePath(filepath.Join(abs, "go.mod"))
		if err != nil {
			return nil, err
		}
	}
	// Disable cgo so the source importer never needs the C toolchain and
	// always selects the pure-Go stdlib variants (net, os/user, ...).
	ctx := build.Default
	ctx.CgoEnabled = false
	build.Default.CgoEnabled = false
	return &Loader{
		Fset:    token.NewFileSet(),
		modPath: modPath,
		root:    abs,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
		std:     lockedStdImporter{},
		ctx:     ctx,
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadModule loads and type-checks every package under the module root,
// returning them sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	l, err := NewLoader(root, "")
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		ip := l.modPath
		if rel != "." {
			ip = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(ip, dir)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue // directory without Go files
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads a single directory as a standalone package under the given
// import path — the entry point used by fixture tests, where the path
// controls which package-gated rules apply.
func LoadDir(dir, importPath string) (*Package, error) {
	l, err := NewLoader(dir, importPath)
	if err != nil {
		return nil, err
	}
	return l.load(importPath, dir)
}

func (l *Loader) load(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	if len(bp.GoFiles) == 0 { // test-only directory
		return nil, &build.NoGoError{Dir: dir}
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loaderImporter resolves module-internal imports from source via the
// Loader and everything else through the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.load(path, filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
