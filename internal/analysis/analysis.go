// Package analysis is a stdlib-only static-analysis engine for this
// repository. It loads every package in the module with go/parser and
// go/types (no external dependencies) and runs a pluggable set of project
// analyzers that turn the conventions established by earlier PRs —
// the determinism contract, the worker-pool concurrency discipline, and
// the per-field config-defaulting rule — into machine-checked invariants.
//
// Findings print as "file:line: [rule] message" and any unsuppressed
// finding makes cmd/glint exit nonzero. A finding can be waived inline
// with
//
//	//glint:ignore rule -- reason
//
// on the offending line or the line directly above it; the reason is
// mandatory (an ignore without one is itself reported) and directives
// that suppress nothing are reported as stale.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"time"

	"github.com/neuralcompile/glimpse/internal/parallel"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the canonical "file:line: [rule] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one pluggable rule.
type Analyzer struct {
	Name string // rule name used in output and //glint:ignore directives
	Doc  string // one-line description
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package plus the finding sink.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	sink     *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Finding{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.Analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		RawGo,
		CfgDefault,
		FloatEq,
		ErrDrop,
		CtxFlow,
		LeakCheck,
		LockCheck,
		AllocPath,
	}
}

// ByName resolves a comma-separated rule list against the full suite.
func ByName(list string) ([]*Analyzer, error) {
	all := All()
	if list == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// RuleTime is the wall time one rule spent over the whole module, as
// reported by glint -v.
type RuleTime struct {
	Name    string
	Elapsed time.Duration
}

// RunAnalyzers runs each analyzer over each package, applies the
// //glint:ignore directives, and returns the surviving findings sorted by
// position. Directive hygiene findings (rule "glint": missing reason,
// stale suppression) are produced only when the full suite ran, so a
// partial -rules invocation never flags a directive whose rule it did not
// execute.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings, _ := RunAnalyzersTimed(pkgs, analyzers)
	return findings
}

// RunAnalyzersTimed is RunAnalyzers plus per-rule wall times. Rules run
// concurrently through the worker pool — each rule writes to its own sink
// and the sinks are merged in suite order, so the result is byte-identical
// to the sequential run. Analyzers only read the type-checked packages,
// which makes them trivially safe to fan out.
func RunAnalyzersTimed(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []RuleTime) {
	sinks := make([][]Finding, len(analyzers))
	times := make([]RuleTime, len(analyzers))
	parallel.For(0, len(analyzers), func(i int) {
		a := analyzers[i]
		start := time.Now()
		for _, pkg := range pkgs {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, sink: &sinks[i]})
		}
		times[i] = RuleTime{Name: a.Name, Elapsed: time.Since(start)}
	})
	var raw []Finding
	for _, sink := range sinks {
		raw = append(raw, sink...)
	}
	full := len(analyzers) == len(All())
	var out []Finding
	for _, pkg := range pkgs {
		out = append(out, applyIgnores(pkg, findingsIn(raw, pkg), full)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return out, times
}

func findingsIn(all []Finding, pkg *Package) []Finding {
	files := map[string]bool{}
	for _, f := range pkg.Files {
		files[pkg.Fset.Position(f.Pos()).Filename] = true
	}
	var out []Finding
	for _, f := range all {
		if files[f.Pos.Filename] {
			out = append(out, f)
		}
	}
	return out
}

// hasSuffixPath reports whether import path p ends with the path suffix
// want (matching whole path elements, so "internal/nn" does not match
// "internal/cnn").
func hasSuffixPath(p, want string) bool {
	return p == want || strings.HasSuffix(p, "/"+want)
}
