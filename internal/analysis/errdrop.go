package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags call statements whose error result vanishes silently: a
// measurement that fails to log or a checkpoint that fails to write must
// surface, not disappear. Only bare expression statements are flagged —
// `_ = f()` remains the sanctioned way to discard an error on purpose,
// and deferred cleanup calls are left alone. Writers that are documented
// never to fail (strings.Builder, bytes.Buffer) and fmt printing to
// stdout/stderr are exempt.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "forbid silently discarded error returns in statement position",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p, call) || exemptCall(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "error result silently discarded; handle it or assign to _ explicitly")
			return true
		})
	}
}

func returnsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exemptCall allows never-fails writers and terminal printing.
func exemptCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() != nil {
		// Method call: exempt when the receiver value is a never-fails
		// writer (strings.Builder, bytes.Buffer, hash.Hash values).
		if tv, ok := p.Pkg.Info.Types[sel.X]; ok {
			return neverFailsWriter(tv.Type)
		}
		return false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		// Exempt terminal writes (os.Stdout/os.Stderr) and writers whose
		// Write is documented never to fail (strings.Builder,
		// bytes.Buffer, the hash.Hash family).
		if len(call.Args) > 0 {
			if s, ok := call.Args[0].(*ast.SelectorExpr); ok {
				if target := p.Pkg.Info.Uses[s.Sel]; target != nil && target.Pkg() != nil &&
					target.Pkg().Path() == "os" && (target.Name() == "Stdout" || target.Name() == "Stderr") {
					return true
				}
			}
			if tv, ok := p.Pkg.Info.Types[call.Args[0]]; ok && neverFailsWriter(tv.Type) {
				return true
			}
		}
	}
	return false
}

// neverFailsWriter reports whether t (possibly behind a pointer) is a
// writer documented never to return a write error.
func neverFailsWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "hash.Hash", "hash.Hash32", "hash.Hash64":
		return true
	}
	return false
}
