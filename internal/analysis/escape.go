package analysis

import (
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strings"
)

// The escape harness cross-validates allocpath's static findings with the
// compiler's own escape analysis: `go build -gcflags=<pkg>=-m` prints, for
// every value the compiler moves to the heap, a diagnosis line. Diffing
// those lines against a checked-in allowlist (testdata/escape_allowlist.txt)
// turns "a refactor quietly added a heap allocation to a scoring path" into
// a test failure, with the allowlist as the reviewed budget. Keys drop
// line and column — "file.go: msg" — so unrelated edits shuffle no entries.

// escapeLine matches one compiler diagnosis, capturing file and message.
var escapeLine = regexp.MustCompile(`^(.+\.go):\d+:\d+: (.+)$`)

// CollectEscapes compiles each listed package (paths relative to the module
// root, e.g. "internal/gbt") with -gcflags=-m and returns the sorted,
// deduplicated "file.go: message" keys of every heap-escape diagnosis in
// those packages' own files. Inlining chatter and diagnoses attributed to
// other packages' files (generic instantiation noise) are dropped.
func CollectEscapes(root, modPath string, pkgs []string) ([]string, error) {
	keys := map[string]bool{}
	for _, rel := range pkgs {
		args := []string{"build", "-gcflags=" + modPath + "/" + rel + "=-m", "./" + rel}
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		for _, line := range strings.Split(string(out), "\n") {
			if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
				continue
			}
			m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil || !strings.HasPrefix(m[1], rel+"/") {
				continue
			}
			keys[m[1]+": "+m[2]] = true
		}
	}
	out := make([]string, 0, len(keys))
	for k := range keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// DiffEscapes splits got against the allowlist: fresh escapes (regressions
// to review) and stale allowlist entries (fixed escapes whose budget line
// should be deleted).
func DiffEscapes(got, allowed []string) (fresh, stale []string) {
	a := map[string]bool{}
	for _, k := range allowed {
		a[k] = true
	}
	g := map[string]bool{}
	for _, k := range got {
		g[k] = true
		if !a[k] {
			fresh = append(fresh, k)
		}
	}
	for _, k := range allowed {
		if !g[k] {
			stale = append(stale, k)
		}
	}
	return fresh, stale
}
