package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The deterministic package list lives in Scope.Deterministic (config.go):
// wall-clock reads and the global math/rand stream would silently break
// the byte-identical-across-workers contract, so both are forbidden
// there; Scope.RNGSeam is the one sanctioned seam to math/rand, and time
// injection happens through hooks such as measure.Config.Now outside
// these packages.

// wallClockFuncs are the package time entry points that read or depend on
// the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// seededConstructors are the math/rand entry points that build an
// explicitly seeded local generator instead of touching the global stream.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

// Determinism enforces the reproducibility contract inside the
// deterministic packages:
//
//  1. no wall-clock reads (time.Now and friends) — results must not
//     depend on when or how fast the run executes. The one carve-out is
//     the telemetry clock seam: a method on a type that implements the
//     package's Clock interface (telemetry.Clock in production) may read
//     the wall clock, because that is exactly the injection point that
//     keeps it out of everything else;
//  2. no global math/rand stream — all randomness flows through a seeded
//     *rng.RNG (internal/rng itself is the sanctioned wrapper and may
//     construct seeded rand.New/rand.NewSource generators);
//  3. no map iteration feeding an order-sensitive sink (append that is
//     never sorted, string building, early return/break) — Go randomizes
//     map order per run.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global math/rand, and order-sensitive map iteration in the deterministic packages",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	if !inScope(p.Pkg.Path, Scope.Deterministic) {
		return
	}
	isRNGSeam := hasSuffixPath(p.Pkg.Path, Scope.RNGSeam)
	isClockSeam := hasSuffixPath(p.Pkg.Path, Scope.ClockSeam)
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := p.Pkg.Info.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if _, isFunc := obj.(*types.Func); isFunc && wallClockFuncs[obj.Name()] {
						if isClockSeam && inClockImpl(p, file, n.Pos()) {
							return true // the sanctioned telemetry.Clock seam
						}
						p.Reportf(n.Pos(), "time.%s reads the wall clock; deterministic packages must take time through the telemetry.Clock seam or an injected hook (cf. measure.Config.Now)", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					if isRNGSeam {
						return true // the sanctioned wrapper package
					}
					switch obj.(type) {
					case *types.Func, *types.Var:
						if !seededConstructors[obj.Name()] {
							p.Reportf(n.Pos(), "global math/rand stream (%s.%s) breaks seed reproducibility; draw from a seeded *rng.RNG", obj.Pkg().Name(), obj.Name())
						}
					}
				}
			case *ast.RangeStmt:
				checkMapRange(p, file, n)
			}
			return true
		})
	}
}

// inClockImpl reports whether pos sits inside a method of a type that
// implements the package's exported Clock interface — the sanctioned
// wall-clock seam (telemetry.Clock in production). Only the concrete
// Clock implementations may read time; everything else must have a Clock
// injected.
func inClockImpl(p *Pass, file *ast.File, pos token.Pos) bool {
	iface := clockInterface(p)
	if iface == nil {
		return false
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
			continue
		}
		if pos < fd.Pos() || pos > fd.End() {
			continue
		}
		recv := fd.Recv.List[0].Type
		if star, ok := recv.(*ast.StarExpr); ok {
			recv = star.X
		}
		id, ok := recv.(*ast.Ident)
		if !ok {
			return false
		}
		obj := identObj(p, id)
		if obj == nil {
			return false
		}
		t := obj.Type()
		return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// clockInterface looks up the package-scoped interface named Clock.
func clockInterface(p *Pass) *types.Interface {
	obj := p.Pkg.Types.Scope().Lookup("Clock")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// checkMapRange flags `for ... := range m` over a map when the loop body
// is order-sensitive: it returns or breaks early, builds a string, or
// appends to a slice that is never handed to sort/slices afterwards in
// the same function. The collect-then-sort idiom therefore passes clean.
func checkMapRange(p *Pass, file *ast.File, rs *ast.RangeStmt) {
	tv, ok := p.Pkg.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	state := &mapRangeState{pass: p}
	ast.Walk(&mapRangeVisitor{state: state}, rs.Body)
	if state.sensitive != "" {
		p.Reportf(rs.Range, "map iteration order is random and this loop %s; iterate over sorted keys", state.sensitive)
		return
	}
	for _, obj := range state.appended {
		if !sortedAfter(p, file, rs, obj) {
			p.Reportf(rs.Range, "map iteration appends to %s in random order and it is never sorted; sort the keys or the result", obj.Name())
			return
		}
	}
}

// mapRangeState accumulates what a map-range loop body does; it is shared
// by every branch of the visitor below.
type mapRangeState struct {
	pass      *Pass
	sensitive string         // first order-sensitive behaviour seen, if any
	appended  []types.Object // slices appended to inside the loop
}

// mapRangeVisitor walks a map-range body. breakDepth counts enclosing
// statements that capture an unlabeled break (nested loops, switches,
// selects), so only breaks terminating the map loop itself count as
// order-sensitive. Function literals are skipped: they are a separate
// execution context.
type mapRangeVisitor struct {
	state      *mapRangeState
	breakDepth int
}

func (v *mapRangeVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil || v.state.sensitive != "" {
		return nil
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		return nil
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return &mapRangeVisitor{state: v.state, breakDepth: v.breakDepth + 1}
	case *ast.ReturnStmt:
		v.state.sensitive = "returns mid-iteration"
		return nil
	case *ast.BranchStmt:
		if n.Tok == token.BREAK && n.Label == nil && v.breakDepth == 0 {
			v.state.sensitive = "breaks mid-iteration"
			return nil
		}
	case *ast.AssignStmt:
		p := v.state.pass
		if n.Tok == token.ADD_ASSIGN && isStringExpr(p, n.Lhs[0]) {
			v.state.sensitive = "concatenates a string across iterations"
			return nil
		}
		for i, rhs := range n.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(p, call) && i < len(n.Lhs) {
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := identObj(p, id); obj != nil {
						v.state.appended = append(v.state.appended, obj)
					}
				}
			}
		}
	}
	return v
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isStringExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func identObj(p *Pass, id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// sortedAfter reports whether obj is passed to a sort/slices call after
// the range statement, anywhere later in the same file.
func sortedAfter(p *Pass, file *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rs.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := p.Pkg.Info.Uses[sel.Sel]
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			for id := range identsIn(arg) {
				if identObj(p, id) == obj {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func identsIn(e ast.Expr) map[*ast.Ident]bool {
	out := map[*ast.Ident]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out[id] = true
		}
		return true
	})
	return out
}
