package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// ignoreDirective is one parsed //glint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	rules  []string // rules it waives
	reason string   // text after "--"
	used   bool
}

const directivePrefix = "glint:ignore"

// parseIgnores extracts every //glint:ignore directive from a package.
// Malformed directives (no rule list, or a missing "-- reason" tail) are
// reported immediately under the reserved rule name "glint": an
// unexplained suppression is treated as a violation of the ignore policy,
// not as a working escape hatch.
func parseIgnores(pkg *Package) (directives []*ignoreDirective, malformed []Finding) {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				body := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				ruleList, reason, ok := strings.Cut(body, "--")
				rules := strings.Fields(strings.ReplaceAll(ruleList, ",", " "))
				reason = strings.TrimSpace(reason)
				if !ok || reason == "" || len(rules) == 0 {
					malformed = append(malformed, Finding{
						Pos:  pos,
						Rule: "glint",
						Msg:  "malformed ignore directive: want //glint:ignore rule[,rule] -- reason",
					})
					continue
				}
				directives = append(directives, &ignoreDirective{pos: pos, rules: rules, reason: reason})
			}
		}
	}
	return directives, malformed
}

// applyIgnores drops findings waived by a directive on the same line or
// the line directly above, and (when the full suite ran) reports stale
// directives that no longer suppress anything so dead waivers cannot
// accumulate.
func applyIgnores(pkg *Package, findings []Finding, fullSuite bool) []Finding {
	directives, malformed := parseIgnores(pkg)
	var out []Finding
	for _, f := range findings {
		suppressed := false
		for _, d := range directives {
			if d.pos.Filename != f.Pos.Filename {
				continue
			}
			if d.pos.Line != f.Pos.Line && d.pos.Line != f.Pos.Line-1 {
				continue
			}
			for _, r := range d.rules {
				if r == f.Rule {
					d.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	out = append(out, malformed...)
	if fullSuite {
		for _, d := range directives {
			if !d.used {
				out = append(out, Finding{
					Pos:  d.pos,
					Rule: "glint",
					Msg:  "stale ignore directive: no " + strings.Join(d.rules, ",") + " finding here to suppress",
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos.Offset < out[j].Pos.Offset })
	return out
}
