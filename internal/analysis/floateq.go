package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. Accumulated
// rounding makes exact float equality a latent bug: two mathematically
// equal scores computed along different instruction orders (e.g. 1 worker
// vs N workers) can differ in the last ulp, flipping a comparison and the
// tuning trajectory with it. Compare against an epsilon helper instead.
// Comparisons where one side is an exact constant zero are allowed — the
// repo uses == 0 as an "unset/sentinel" check, which is well-defined —
// as is any site annotated //glint:ignore floateq with a justification.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on float operands (exact-zero sentinel checks excepted)",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(p, be.X) && !isFloatOperand(p, be.Y) {
				return true
			}
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
				return true
			}
			p.Reportf(be.OpPos, "%s on float operands is rounding-sensitive; use an epsilon comparison", be.Op)
			return true
		})
	}
}

func isFloatOperand(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isZeroConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
