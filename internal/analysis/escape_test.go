package analysis

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const escapeAllowlist = "testdata/escape_allowlist.txt"

// TestHotPathEscapes diffs the compiler's escape analysis over the hot
// packages (Scope.Hot) against the checked-in allowlist. A fresh escape is
// a failure: either hoist the allocation (allocpath usually points at the
// construct) or, if it is deliberate, add the key to the allowlist with the
// review. Regenerate wholesale with
//
//	GLIMPSE_ESCAPE_REWRITE=1 go test ./internal/analysis -run TestHotPathEscapes
func TestHotPathEscapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build; run without -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectEscapes(root, modPath, Scope.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no escape diagnoses at all; the -m harness is broken")
	}
	if os.Getenv("GLIMPSE_ESCAPE_REWRITE") != "" {
		data := "# Reviewed heap escapes on the hot scoring paths (internal/analysis escape harness).\n" +
			"# One \"file.go: message\" key per line; regenerate with GLIMPSE_ESCAPE_REWRITE=1.\n" +
			strings.Join(got, "\n") + "\n"
		if err := os.WriteFile(escapeAllowlist, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", escapeAllowlist, len(got))
		return
	}
	allowed, err := readEscapeAllowlist(escapeAllowlist)
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := DiffEscapes(got, allowed)
	for _, k := range fresh {
		t.Errorf("new heap escape on a hot path: %s\n(hoist it, or add to %s with review)", k, escapeAllowlist)
	}
	// Stale entries are informational: compiler upgrades reword messages and
	// genuine fixes both land here; prune on the next rewrite.
	for _, k := range stale {
		t.Logf("stale allowlist entry (escape no longer reported): %s", k)
	}
}

func readEscapeAllowlist(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}
