package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck enforces the mutex discipline of the stateful layers
// (Scope.Lock: the telemetry metric registry, the tuned-config cache
// store, the fleet scheduler/endpoint pool, measure, tlog, parallel):
//
//  1. no lock value copies — a method or function that takes a struct
//     transitively containing a sync.Mutex/RWMutex by value operates on a
//     copy of the lock, silently splitting the critical section;
//  2. every mu.Lock()/RLock() must have a matching Unlock()/RUnlock() on
//     the same receiver path somewhere in the same function (deferred or
//     inline) — a lock whose release lives in a different function is
//     unauditable and one early return away from a deadlock;
//  3. no blocking operation while a lock is held: channel sends and
//     receives, selects without a default, time.Sleep, WaitGroup.Wait,
//     dials and synchronous RPC calls between Lock and Unlock stall every
//     other goroutine contending for the lock (and EventSink-style
//     callbacks invoked under the lock are documented as must-not-block
//     for the same reason).
//
// The held-lock scan is a conservative statement-order walk: state does
// not escape nested blocks, and function literals start with no locks
// held, so the collect-under-lock / operate-after-unlock idiom passes
// clean.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "forbid lock value copies, Lock without same-function Unlock, and blocking operations while a mutex is held",
	Run:  runLockCheck,
}

func runLockCheck(p *Pass) {
	if !inScope(p.Pkg.Path, Scope.Lock) {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(p, fd)
			if fd.Body != nil {
				checkLockPairing(p, fd)
				walkHeld(p, fd.Body, map[string]bool{})
			}
		}
	}
}

// checkLockCopies flags by-value receivers and parameters whose struct
// type transitively contains a mutex.
func checkLockCopies(p *Pass, fd *ast.FuncDecl) {
	check := func(field *ast.Field, what string) {
		tv, ok := p.Pkg.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			return
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			return
		}
		if containsMutex(tv.Type, 0) {
			p.Reportf(field.Pos(), "%s passes a lock-bearing struct by value; the copy has its own mutex and the critical section silently splits — use a pointer", what)
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			check(field, "receiver")
		}
	}
	for _, field := range fd.Type.Params.List {
		check(field, "parameter")
	}
}

// containsMutex reports whether t transitively embeds a sync.Mutex or
// sync.RWMutex (bounded depth to stay clear of recursive types).
func containsMutex(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	if typePathIs(t, "sync", "Mutex") || typePathIs(t, "sync", "RWMutex") {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if containsMutex(st.Field(i).Type(), depth+1) {
			return true
		}
	}
	return false
}

// mutexMethod reports whether call is Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/RWMutex, returning the rendered receiver path and method.
func mutexMethod(p *Pass, call *ast.CallExpr) (path, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	if !typePathIs(sig.Recv().Type(), "sync", "Mutex") && !typePathIs(sig.Recv().Type(), "sync", "RWMutex") {
		return "", "", false
	}
	return exprPath(sel.X), sel.Sel.Name, true
}

// checkLockPairing requires an Unlock/RUnlock for every locked receiver
// path somewhere in the same function subtree (closures included, so a
// deferred func(){ mu.Unlock() }() counts).
func checkLockPairing(p *Pass, fd *ast.FuncDecl) {
	type lockSite struct {
		pos    token.Pos
		method string
	}
	locks := map[string]lockSite{}
	unlocked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, method, ok := mutexMethod(p, call)
		if !ok || path == "" {
			return true
		}
		switch method {
		case "Lock", "RLock":
			if _, seen := locks[path]; !seen {
				locks[path] = lockSite{pos: call.Pos(), method: method}
			}
		case "Unlock", "RUnlock":
			unlocked[path] = true
		}
		return true
	})
	for path, site := range locks {
		if !unlocked[path] {
			p.Reportf(site.pos, "%s.%s() without a same-function Unlock; release the lock where it is taken (defer) so no return path can leave it held", path, site.method)
		}
	}
}

// walkHeld is the conservative statement-order scan for blocking
// operations under a held lock. held maps receiver paths to "locked";
// nested blocks get a copy, so their lock-state changes stay local.
func walkHeld(p *Pass, block *ast.BlockStmt, held map[string]bool) {
	for _, stmt := range block.List {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if path, method, ok := mutexMethod(p, call); ok && path != "" {
					switch method {
					case "Lock", "RLock":
						held[path] = true
					case "Unlock", "RUnlock":
						delete(held, path)
					}
					continue
				}
			}
			checkBlockingUnder(p, s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to return; nothing to
			// update. A deferred closure runs with no locks held.
			if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
				walkHeld(p, fl.Body, map[string]bool{})
			}
		case *ast.BlockStmt:
			walkHeld(p, s, copyHeld(held))
		case *ast.IfStmt:
			checkBlockingUnder(p, s.Cond, held)
			walkHeld(p, s.Body, copyHeld(held))
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					walkHeld(p, e, copyHeld(held))
				case *ast.IfStmt:
					walkHeld(p, &ast.BlockStmt{List: []ast.Stmt{e}}, copyHeld(held))
				}
			}
		case *ast.ForStmt:
			walkHeld(p, s.Body, copyHeld(held))
		case *ast.RangeStmt:
			walkHeld(p, s.Body, copyHeld(held))
		case *ast.SwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					walkHeld(p, &ast.BlockStmt{List: cc.Body}, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					walkHeld(p, &ast.BlockStmt{List: cc.Body}, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !selectHasDefault(s) {
				p.Reportf(s.Pos(), "select without default while %s is held; the wait stalls every goroutine contending for the lock", anyHeld(held))
			}
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					walkHeld(p, &ast.BlockStmt{List: cc.Body}, copyHeld(held))
				}
			}
		default:
			checkBlockingUnder(p, stmt, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func anyHeld(held map[string]bool) string {
	best := ""
	for path := range held {
		if best == "" || path < best {
			best = path
		}
	}
	return best
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// checkBlockingUnder flags blocking operations inside one statement (or
// expression) while locks are held. A nested function literal executes
// later with its own lock state, so its body restarts the scan with
// nothing held.
func checkBlockingUnder(p *Pass, n ast.Node, held map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			walkHeld(p, m.Body, map[string]bool{})
			return false
		case *ast.SendStmt:
			if len(held) > 0 {
				p.Reportf(m.Arrow, "channel send while %s is held; move the send outside the critical section", anyHeld(held))
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && len(held) > 0 {
				p.Reportf(m.OpPos, "channel receive while %s is held; move the wait outside the critical section", anyHeld(held))
			}
		case *ast.CallExpr:
			if name, bad := blockingCallName(p, m); bad && len(held) > 0 {
				p.Reportf(m.Pos(), "%s while %s is held; blocking under a lock stalls every contender", name, anyHeld(held))
			}
		}
		return true
	})
}

// blockingCallName recognizes the known-blocking stdlib calls.
func blockingCallName(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" && sig != nil && sig.Recv() == nil {
			return "time.Sleep", true
		}
	case "sync":
		if fn.Name() == "Wait" && sig != nil && sig.Recv() != nil &&
			typePathIs(sig.Recv().Type(), "sync", "WaitGroup") {
			return "sync.WaitGroup.Wait", true
		}
	case "net":
		if sig != nil && sig.Recv() == nil && blockingNetFuncs[fn.Name()] {
			return "net." + fn.Name(), true
		}
	case "net/rpc":
		if fn.Name() == "Call" && sig != nil && sig.Recv() != nil &&
			typePathIs(sig.Recv().Type(), "net/rpc", "Client") {
			return "rpc.Client.Call", true
		}
	}
	return "", false
}
