// Package fixture exercises the telemetry clock carve-out of the
// determinism rule: inside internal/telemetry, wall-clock reads are
// permitted only in methods of types implementing the package's Clock
// interface; everywhere else they stay findings.
package fixture

import "time"

// Clock is the injectable time seam (mirrors telemetry.Clock).
type Clock interface {
	Now() time.Time
}

type sysClock struct{}

// Now is the sanctioned wall-clock read: sysClock implements Clock.
func (sysClock) Now() time.Time { return time.Now() }

type fakeClock struct{ t time.Time }

// Now on *fakeClock also implements Clock (pointer receiver) and reads no
// wall clock at all.
func (c *fakeClock) Now() time.Time { return c.t }

// Advance moves the fake instant; pure time arithmetic is always fine.
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

type notAClock struct{}

// Now has the wrong signature, so notAClock does not implement Clock.
func (notAClock) Now() int { return 0 }

func (notAClock) Read() time.Time {
	return time.Now() // want determinism
}

func bare() time.Duration {
	start := time.Now()          // want determinism
	time.Sleep(time.Millisecond) // want determinism ctxflow
	return time.Until(start)     // want determinism
}
