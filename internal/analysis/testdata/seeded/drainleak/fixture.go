// Seeded defect: the leaked drain waiter. An early cut of the measurement
// server's shutdown spawned a poller with no join path and no context —
// when the caller gave up waiting, the goroutine kept polling a dead
// server forever. leakcheck catches the unjoined spawn; ctxflow catches
// the uncancellable sleep inside it.
package measure

import (
	"sync"
	"time"
)

type server struct {
	mu       sync.Mutex
	inflight int
}

func (s *server) drainAsync() {
	go func() { // want leakcheck
		for {
			s.mu.Lock()
			n := s.inflight
			s.mu.Unlock()
			if n == 0 {
				return
			}
			time.Sleep(2 * time.Millisecond) // want ctxflow
		}
	}()
}
