// Seeded defect: the blocking event sink and the copied registry. An
// early metric registry delivered events to a subscriber channel while
// still holding its own mutex — a slow subscriber stalled every counter
// increment in the process. The snapshot helper also took the registry by
// value, copying the mutex. lockcheck flags both shapes.
package tlog

import "sync"

type registry struct {
	mu     sync.Mutex
	counts map[string]int
	events chan string
}

func (r *registry) incr(name string) {
	r.mu.Lock()
	r.counts[name]++
	r.events <- name // want lockcheck
	r.mu.Unlock()
}

func snapshot(r registry) map[string]int { // want lockcheck
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}
