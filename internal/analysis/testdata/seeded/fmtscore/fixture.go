// Seeded defect: fmt on the scoring path. The tuned-config cache's first
// warm-start pass built its candidate keys with fmt.Sprintf inside the
// scoring loop — two allocations per candidate, multiplied by every
// candidate the acquisition function ranked. allocpath flags the loop
// allocations reachable from the Score root.
package acq

import "fmt"

type candidate struct {
	Blueprint int64
	Index     int64
}

func Score(cands []candidate) map[string]float64 {
	out := make(map[string]float64, len(cands))
	var keys []string
	for _, c := range cands {
		key := fmt.Sprintf("%d/%d", c.Blueprint, c.Index) // want allocpath
		keys = append(keys, key)                          // want allocpath
		out[key] = float64(c.Index)
	}
	_ = keys
	return out
}
