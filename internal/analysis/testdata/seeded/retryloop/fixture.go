// Seeded defect: the ctx-less retry loop. The fleet's first endpoint
// redial helper backed off with bare time.Sleep and net.Dial — a tuning
// session being torn down had to sit through the full retry schedule
// before its worker exited. ctxflow flags both the dial and the sleep.
package fleet

import (
	"net"
	"time"
)

func redial(addr string, attempts int) (net.Conn, error) {
	var lastErr error
	for i := 0; i < attempts; i++ {
		conn, err := net.Dial("tcp", addr) // want ctxflow
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(time.Duration(i+1) * 100 * time.Millisecond) // want ctxflow
	}
	return nil, lastErr
}
