package drop

import (
	"fmt"
	"os"
	"strings"
)

func fallible() error { return nil }

func multi() (int, error) { return 0, nil }

// Bad drops errors in statement position.
func Bad() {
	fallible() // want errdrop
	multi()    // want errdrop
}

// Explicit handles or deliberately discards; both are sanctioned.
func Explicit() {
	_ = fallible()
	if err := fallible(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// Exempt writers are documented never to fail, and fmt printing to the
// terminal is exempt too.
func Exempt() {
	var sb strings.Builder
	fmt.Fprintf(&sb, "x")
	sb.WriteString("y")
	fmt.Println(sb.String())
	fmt.Fprintln(os.Stderr, "status")
}
