// Fixture for the lockcheck rule: no lock value copies, no Lock without a
// same-function Unlock, no blocking operations while a mutex is held.
package tlog

import (
	"sync"
	"time"
)

type store struct {
	mu sync.Mutex
	m  map[string]int
}

type wrapper struct {
	inner store // lock embedded one level down
}

func (s *store) paired(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

func (s *store) leaked(k string) int { // lock with no release path
	s.mu.Lock() // want lockcheck
	return s.m[k]
}

func (s store) valueReceiver() { // want lockcheck
	s.mu.Lock()
	s.mu.Unlock()
}

func byValueParam(w wrapper) { // want lockcheck
	_ = w
}

func byPointerParam(w *wrapper) { // ok
	_ = w
}

func (s *store) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want lockcheck
	s.mu.Unlock()
}

func (s *store) sendUnderLock(ch chan int) {
	s.mu.Lock()
	ch <- 1 // want lockcheck
	s.mu.Unlock()
}

func (s *store) recvUnderLock(ch chan int) {
	s.mu.Lock()
	<-ch // want lockcheck
	s.mu.Unlock()
}

func (s *store) waitUnderLock(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want lockcheck
	s.mu.Unlock()
}

func (s *store) selectUnderLock(ch chan int) {
	s.mu.Lock()
	select { // want lockcheck
	case <-ch:
	}
	s.mu.Unlock()
}

func (s *store) selectWithDefault(ch chan int) {
	s.mu.Lock()
	select { // ok: the default arm makes it non-blocking
	case v := <-ch:
		_ = v
	default:
	}
	s.mu.Unlock()
}

func (s *store) collectThenSend(ch chan int) {
	s.mu.Lock()
	v := s.m["k"]
	s.mu.Unlock()
	ch <- v // ok: lock released before the send
}

func (s *store) deferredHoldsToReturn(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-ch // want lockcheck
}

func (s *store) closureRunsLater(ch chan int) func() {
	s.mu.Lock()
	f := func() { <-ch } // ok: executes after the critical section
	s.mu.Unlock()
	return f
}

func (s *store) closureOwnDiscipline(ch chan int) func() {
	return func() {
		s.mu.Lock()
		<-ch // want lockcheck
		s.mu.Unlock()
	}
}

func (s *store) branchScopedLock(cond bool, ch chan int) {
	if cond {
		s.mu.Lock()
		s.m["k"]++
		s.mu.Unlock()
	}
	ch <- 1 // ok: the branch released its lock; nothing held here
}
