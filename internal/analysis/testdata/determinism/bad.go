package anneal

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock inside a deterministic package.
func Stamp() time.Time {
	return time.Now() // want determinism
}

// Elapsed depends on wall-clock duration.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want determinism
}

// Draw uses the global math/rand stream.
func Draw() int {
	return rand.Intn(10) // want determinism
}

// Keys appends map keys in random order and never sorts them.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want determinism
		out = append(out, k)
	}
	return out
}

// First returns whichever key happens to come up first.
func First(m map[string]int) string {
	for k := range m { // want determinism
		return k
	}
	return ""
}

// Join builds a string in map order.
func Join(m map[string]int) string {
	s := ""
	for k := range m { // want determinism
		s += k
	}
	return s
}
