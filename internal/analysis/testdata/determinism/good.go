package anneal

import (
	"math/rand"
	"sort"
)

// Seeded constructs an explicitly seeded local generator — the sanctioned
// use of math/rand.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SortedKeys is the collect-then-sort idiom: the append happens in map
// order but the result is sorted before use.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum is order-independent accumulation, which map iteration may feed.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes map-to-map, which no iteration order can disturb.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
