package core

// Spawn launches raw goroutines outside the pool layers.
func Spawn(fn func()) {
	go fn() // want rawgo
	done := make(chan struct{})
	go func() { // want rawgo
		close(done)
	}()
	<-done
}

// ServeLoop is a sanctioned exception carrying the mandatory reason.
func ServeLoop(fn func()) {
	go fn() //glint:ignore rawgo -- fixture: stands in for an RPC serve loop
}
