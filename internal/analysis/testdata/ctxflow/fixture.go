// Fixture for the ctxflow rule: blocking operations in the context-scoped
// packages must sit under a caller-supplied context.Context; fresh roots
// are confined to package main, tests, and waived shims.
package measure

import (
	"context"
	"net"
	"net/rpc"
	"time"
)

func freshRoot() context.Context {
	return context.Background() // want ctxflow
}

func todoRoot() context.Context {
	ctx := context.TODO() // want ctxflow
	return ctx
}

func sleepNoCtx() {
	time.Sleep(time.Millisecond) // want ctxflow
}

func sleepWithCtx(ctx context.Context) {
	_ = ctx
	time.Sleep(time.Millisecond) // ok: a ctx is threaded through this frame
}

func bareTimerWait() {
	<-time.After(time.Millisecond) // want ctxflow
}

func dialNoCtx() (net.Conn, error) {
	return net.Dial("tcp", "127.0.0.1:1") // want ctxflow
}

func dialerNoCtx() (net.Conn, error) {
	var d net.Dialer
	return d.Dial("tcp", "127.0.0.1:1") // want ctxflow
}

func dialWithCtx(ctx context.Context) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", "127.0.0.1:1") // ok
}

func rpcCallNoCtx(c *rpc.Client) error {
	return c.Call("Svc.Method", struct{}{}, nil) // want ctxflow
}

func rpcCallWithCtx(ctx context.Context, c *rpc.Client) error {
	_ = ctx
	return c.Call("Svc.Method", struct{}{}, nil) // ok: ctx in scope
}

func sendParamNoCtx(ch chan int) {
	ch <- 1 // want ctxflow
}

func recvParamNoCtx(ch chan int) int {
	return <-ch // want ctxflow
}

func localChannelOK() int {
	ch := make(chan int, 1)
	ch <- 1 // ok: channel lives and dies in this frame
	return <-ch
}

func selectIsExempt(ctx context.Context, ch chan int) int {
	select {
	case <-ctx.Done():
		return 0
	case v := <-ch:
		return v
	case <-time.After(time.Millisecond): // ok: timeout arm of a select
		return -1
	}
}

func closureInheritsCtx(ctx context.Context, ch chan int) {
	f := func() {
		<-ch // ok: the enclosing closure chain threads a ctx
	}
	f()
	_ = ctx
}

func closureNoCtx(ch chan int) {
	f := func() {
		<-ch // want ctxflow
	}
	f()
}
