// Fixture for the leakcheck rule: every goroutine spawned in the pool
// layers needs a provable join or cancel path.
package fleet

import (
	"context"
	"sync"
)

func unjoined() {
	go func() {}() // want leakcheck
}

func wgJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // ok: Add before spawn, Done in body
		defer wg.Done()
	}()
	wg.Wait()
}

func wgAddAfterSpawn() {
	var wg sync.WaitGroup
	go func() { // want leakcheck
		defer wg.Done()
	}()
	wg.Add(1)
	wg.Wait()
}

func ctxBound(ctx context.Context) {
	go func() { // ok: terminates on cancellation
		<-ctx.Done()
	}()
}

func doneChannel() {
	quit := make(chan struct{})
	go func() { // ok: parks on the quit channel
		<-quit
	}()
	close(quit)
}

func drainsChannel(ch chan int) {
	go func() { // ok: exits when the producer closes ch
		for range ch {
		}
	}()
}

func boundedHandoff() int {
	ch := make(chan int, 1)
	go func() { // ok: the buffered send is the completion guarantee
		ch <- 42
	}()
	return <-ch
}

func handoffOnParamChannel(ch chan int) {
	go func() { // want leakcheck
		ch <- 1 // want ctxflow
	}()
}

func unbufferedHandoff() {
	ch := make(chan int)
	go func() { // want leakcheck
		ch <- 1
	}()
	// The receive may never run; an unbuffered send is not a guarantee.
}

func fireAndForgetNamed() {
	go helper() // want leakcheck
}

func helper() {}

func namedWithCtx(ctx context.Context) {
	go watch(ctx) // ok: the named function's body receives ctx.Done
}

func watch(ctx context.Context) {
	<-ctx.Done()
}

func opaqueSpawn(f func()) {
	go f() // want leakcheck
}
