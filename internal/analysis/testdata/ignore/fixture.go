package util

func fallible() error { return nil }

// SuppressedSameLine waives the finding with a trailing directive.
func SuppressedSameLine() {
	fallible() //glint:ignore errdrop -- fixture: deliberate discard with a reason
}

// SuppressedLineAbove waives the finding from the line above.
func SuppressedLineAbove() {
	//glint:ignore errdrop -- fixture: directive on the preceding line
	fallible()
}

// Malformed lacks the mandatory "-- reason" tail, so the directive is
// itself reported and the finding it meant to waive survives.
func Malformed() {
	fallible() //glint:ignore errdrop without the separator // want glint errdrop
}

// Stale directives that no longer suppress anything are reported so dead
// waivers cannot accumulate.
//
//glint:ignore rawgo -- fixture: nothing here spawns a goroutine // want glint
func Stale() {}
