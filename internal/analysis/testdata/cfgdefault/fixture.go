// Package tune reproduces the PR 2 config bug class: anneal.Run and
// gbt.Train replaced a partially-set Config with DefaultConfig() wholesale
// after noticing a single unset field, silently discarding every field the
// caller did set. RunWholesale is that regression, preserved here as the
// analyzer's fixture; RunPerField is the sanctioned shape.
package tune

// Config mirrors the tuner configuration shape.
type Config struct {
	Iters   int
	Workers int
}

// DefaultConfig returns the default schedule.
func DefaultConfig() Config { return Config{Iters: 100, Workers: 4} }

// RunWholesale checks one field, then nukes them all.
func RunWholesale(cfg Config) Config {
	if cfg.Iters <= 0 {
		cfg = DefaultConfig() // want cfgdefault
	}
	return cfg
}

// RunPtr is the pointer-parameter variant of the same bug.
func RunPtr(cfg *Config) {
	if cfg.Iters <= 0 {
		*cfg = DefaultConfig() // want cfgdefault
	}
}

// RunPerField defaults each non-positive field individually, preserving
// everything the caller set.
func RunPerField(cfg Config) Config {
	def := DefaultConfig()
	if cfg.Iters <= 0 {
		cfg.Iters = def.Iters
	}
	if cfg.Workers <= 0 {
		cfg.Workers = def.Workers
	}
	return cfg
}

// Fresh constructs a local config from defaults — building a new value is
// allowed; only replacing a caller's parameter is the bug.
func Fresh() Config {
	cfg := DefaultConfig()
	cfg.Iters = 7
	return cfg
}
