// Fixture for the allocpath rule: per-iteration allocation constructs on
// the paths reachable from hot scoring entry points (Predict*, Score*,
// Infer*, Select*, Run*, Sample*, Forward*).
package gbt

import (
	"fmt"
	"math"
	"strconv"
)

// Predict is a hot root by name.
func Predict(xs []float64) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, fmt.Sprintf("%f", x)) // want allocpath
	}
	return out
}

// Score accumulates without preallocating.
func Score(xs []float64) int {
	var acc []float64
	for _, x := range xs {
		acc = append(acc, x*2) // want allocpath
	}
	return len(acc)
}

// SelectBest shows the clean shapes: strconv instead of fmt, append into a
// slice made with explicit capacity.
func SelectBest(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, strconv.Itoa(i)) // ok
	}
	return out
}

// Run reaches the allocation only through a package-local call.
func Run(n int) int {
	return runInner(n)
}

func runInner(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += len(fmt.Sprint(i)) // want allocpath
	}
	return total
}

// coldLoop is reachable from no hot root; the same construct passes.
func coldLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += len(fmt.Sprint(i)) // ok: not on a scoring path
	}
	return total
}

// SampleClosures materializes a closure per iteration.
func SampleClosures(n int) []func() int {
	fs := make([]func() int, 0, n)
	for i := 0; i < n; i++ {
		fs = append(fs, func() int { return i }) // want allocpath
	}
	return fs
}

// ForwardIIFE calls a literal on the spot — execution, not storage.
func ForwardIIFE(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += func() int { return i * i }() // ok: immediately invoked
	}
	return total
}

// InferErrors exits through fmt on the error path only.
func InferErrors(xs []float64) error {
	for _, x := range xs {
		if x < 0 {
			return fmt.Errorf("negative input %f", x) // ok: error exit fires once
		}
		if math.IsNaN(x) {
			panic(fmt.Sprintf("NaN input %f", x)) // ok: panic exit
		}
	}
	return nil
}
