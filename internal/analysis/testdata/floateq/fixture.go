package calc

import "math"

const eps = 1e-9

// Same is the latent bug: scores computed along different instruction
// orders can differ in the last ulp.
func Same(a, b float64) bool {
	return a == b // want floateq
}

// Different is the same bug inverted.
func Different(a, b float64) bool {
	return a != b // want floateq
}

// Near32 shows the rule covers float32 too.
func Near32(a float32, b float64) bool {
	return float64(a) == b // want floateq
}

// AlmostEqual is the sanctioned epsilon helper.
func AlmostEqual(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

// Unset is an exact-zero sentinel check, which is well-defined and allowed.
func Unset(x float64) bool {
	return x == 0
}

// IntEq is integer equality; out of scope.
func IntEq(a, b int) bool {
	return a == b
}
