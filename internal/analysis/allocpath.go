package analysis

import (
	"go/ast"
	"go/types"
)

// AllocPath polices the per-candidate scoring paths in the hot packages
// (Scope.Hot: gbt, nn, acq, anneal, sampler). The tuner evaluates tens of
// thousands of candidates per run, so an allocation in a scoring loop is
// multiplied by the full candidate stream and shows up directly in tuning
// wall time. The analyzer computes the set of functions reachable (via
// package-local static calls) from the hot entry points — exported
// functions and methods matching Scope.HotRoots (Predict*, Score*,
// Infer*, Select*, Run*, Sample*, Forward*) — and inside those flags the
// allocation constructs that repeatedly escape review:
//
//   - fmt.* calls inside a loop (every call allocates its variadic args
//     and result; error/panic exits are exempt — they fire once);
//   - append inside a loop to a slice declared in the same function
//     without preallocated capacity (var s []T / s := []T{} / make(_, 0));
//   - a function literal materialized inside a loop body other than being
//     called on the spot — stored or passed closures allocate per
//     iteration; hoist them out of the loop.
//
// The static findings are cross-validated by the escape-analysis harness
// (escape_test.go), which diffs `go build -gcflags=-m` output for the hot
// packages against testdata/escape_allowlist.txt.
var AllocPath = &Analyzer{
	Name: "allocpath",
	Doc:  "flag per-iteration allocation constructs (fmt in loops, append without prealloc, closures in loops) on paths reachable from hot scoring entry points",
	Run:  runAllocPath,
}

func runAllocPath(p *Pass) {
	if !inScope(p.Pkg.Path, Scope.Hot) {
		return
	}
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	hot := hotReachable(p, decls)
	for obj, fd := range decls {
		if hot[obj] {
			scanAllocs(p, fd)
		}
	}
}

// hotReachable BFSes the package-local static call graph from the
// functions whose names match Scope.HotRoots.
func hotReachable(p *Pass, decls map[types.Object]*ast.FuncDecl) map[types.Object]bool {
	reached := map[types.Object]bool{}
	var queue []types.Object
	for obj := range decls {
		if Scope.HotRoots.MatchString(obj.Name()) {
			reached[obj] = true
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		ast.Inspect(decls[obj].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = p.Pkg.Info.Uses[fun]
			case *ast.SelectorExpr:
				callee = p.Pkg.Info.Uses[fun.Sel]
			}
			if callee != nil && decls[callee] != nil && !reached[callee] {
				reached[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}
	return reached
}

// scanAllocs walks one hot function flagging per-iteration allocations.
func scanAllocs(p *Pass, fd *ast.FuncDecl) {
	prealloc := preallocedSlices(p, fd)
	var walk func(n ast.Node, loopDepth int, onExit bool)
	walk = func(n ast.Node, loopDepth int, onExit bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			walkChildren(n, func(c ast.Node) {
				depth := loopDepth
				if c == n.Body {
					depth++
				}
				walk(c, depth, false)
			})
			return
		case *ast.RangeStmt:
			walkChildren(n, func(c ast.Node) {
				depth := loopDepth
				if c == n.Body {
					depth++
				}
				walk(c, depth, false)
			})
			return
		case *ast.ReturnStmt:
			// A fmt.Errorf on the way out fires once, not per candidate.
			walkChildren(n, func(c ast.Node) { walk(c, loopDepth, true) })
			return
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, isB := p.Pkg.Info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
					walkChildren(n, func(c ast.Node) { walk(c, loopDepth, true) })
					return
				}
			}
			if loopDepth > 0 && !onExit {
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func); ok &&
						fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
						p.Reportf(n.Pos(), "fmt.%s inside a loop on a hot scoring path allocates per iteration; format once outside the loop or use strconv", fn.Name())
					}
				}
				if isBuiltinAppend(p, n) {
					checkLoopAppend(p, fd, n, prealloc)
				}
			}
			// An immediately-invoked literal is execution, not storage.
			if _, iife := n.Fun.(*ast.FuncLit); iife {
				if fl := n.Fun.(*ast.FuncLit); fl != nil {
					walk(fl.Body, loopDepth, false)
				}
				for _, arg := range n.Args {
					walk(arg, loopDepth, onExit)
				}
				return
			}
			walkChildren(n, func(c ast.Node) { walk(c, loopDepth, onExit) })
			return
		case *ast.FuncLit:
			if loopDepth > 0 && !onExit {
				p.Reportf(n.Pos(), "function literal materialized inside a loop on a hot scoring path allocates a closure per iteration; hoist it out of the loop")
			}
			// The literal's body runs per invocation; scan it with a fresh
			// loop context of its own.
			walk(n.Body, 0, false)
			return
		}
		walkChildren(n, func(c ast.Node) { walk(c, loopDepth, onExit) })
	}
	walk(fd.Body, 0, false)
}

// walkChildren visits the direct children of n in source order.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

// preallocedSlices collects the slice variables in fd that are declared
// with explicit capacity — make([]T, n) or make([]T, n, c) with a nonzero
// size — so loop appends into them pass clean.
func preallocedSlices(p *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if i >= len(assign.Lhs) {
				break
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			fid, ok := call.Fun.(*ast.Ident)
			if !ok {
				continue
			}
			if b, isB := p.Pkg.Info.Uses[fid].(*types.Builtin); !isB || b.Name() != "make" {
				continue
			}
			capArg := call.Args[len(call.Args)-1]
			if isZeroConst(p, capArg) {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := identObj(p, id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// checkLoopAppend flags append(x, ...) in a loop when x is a slice
// declared in the body of fd (not a parameter, field, or package
// variable — those may be preallocated by the caller) with no explicit
// capacity. Only the grow-as-you-go accumulator pattern is flagged.
func checkLoopAppend(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := identObj(p, id)
	v, isVar := obj.(*types.Var)
	if !isVar || v.IsField() || prealloc[obj] {
		return
	}
	if v.Pos() < fd.Body.Pos() || v.Pos() > fd.Body.End() {
		return
	}
	if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
		return
	}
	p.Reportf(call.Pos(), "append to %s grows an unpreallocated slice inside a hot loop; size it up front with make(len 0, cap n)", v.Name())
}
