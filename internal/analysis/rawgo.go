package analysis

import "go/ast"

// poolPkgs are the layers allowed to spawn goroutines directly: the worker
// pool itself, the fleet/measurement orchestrators whose concurrency is
// the whole point of the package, and the telemetry layer (its debug HTTP
// server runs a background serve loop).
var poolPkgs = []string{
	"internal/parallel",
	"internal/fleet",
	"internal/measure",
	"internal/telemetry",
}

// RawGo flags `go` statements outside the pool layers. Search hot paths
// must use internal/parallel, which bounds fan-out to the configured
// worker count and keeps reductions ordered (the determinism contract);
// a raw goroutine sidesteps both. Legitimate exceptions — RPC serve
// loops, signal handlers, shutdown drains — carry a //glint:ignore rawgo
// annotation with the reason.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "forbid raw goroutines outside internal/parallel, internal/fleet, internal/measure, and internal/telemetry",
	Run:  runRawGo,
}

func runRawGo(p *Pass) {
	for _, suffix := range poolPkgs {
		if hasSuffixPath(p.Pkg.Path, suffix) {
			return
		}
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "raw goroutine outside the pool layers; use internal/parallel so fan-out stays bounded and deterministic")
			}
			return true
		})
	}
}
