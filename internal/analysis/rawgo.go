package analysis

import "go/ast"

// RawGo flags `go` statements outside the pool layers (Scope.Pool: the
// worker pool itself, the fleet/measurement orchestrators whose
// concurrency is the whole point of the package, and the telemetry
// layer's debug serve loop). Search hot paths must use internal/parallel,
// which bounds fan-out to the configured worker count and keeps
// reductions ordered (the determinism contract); a raw goroutine
// sidesteps both. Legitimate exceptions — RPC serve loops, signal
// handlers, shutdown drains — carry a //glint:ignore rawgo annotation
// with the reason. Inside the pool layers the leakcheck rule takes over:
// being allowed to spawn means being obliged to join.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "forbid raw goroutines outside the pool layers (internal/parallel, fleet, measure, telemetry)",
	Run:  runRawGo,
}

func runRawGo(p *Pass) {
	if inScope(p.Pkg.Path, Scope.Pool) {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "raw goroutine outside the pool layers; use internal/parallel so fan-out stays bounded and deterministic")
			}
			return true
		})
	}
}
