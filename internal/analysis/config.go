package analysis

import "regexp"

// This file is the single shared configuration table for every
// package-gated rule in the suite. Earlier revisions kept one ad-hoc
// package list per analyzer file (the determinism list, the rawgo pool
// allowlist, the telemetry carve-outs), which drifted as packages were
// added to one rule but not its siblings; all path scoping now lives
// here so a new package is classified exactly once.
//
// Paths are import-path suffixes matched on whole elements (see
// hasSuffixPath), so the table works for the real module path and for
// the fixture prefix used by the tests alike.

// Scope is the project contract map: which packages each rule binds.
var Scope = struct {
	// Deterministic packages are bound by the PR 2 reproducibility
	// contract: byte-identical results across 1..N workers for a fixed
	// seed. The determinism rule forbids wall-clock reads, the global
	// math/rand stream, and order-sensitive map iteration here.
	Deterministic []string
	// RNGSeam is the one sanctioned wrapper around math/rand.
	RNGSeam string
	// ClockSeam is the package whose exported Clock interface
	// implementations may read the wall clock (telemetry in production).
	ClockSeam string
	// Pool packages may spawn goroutines (rawgo) — and, in exchange,
	// every goroutine they spawn must have a provable join or cancel
	// path (leakcheck).
	Pool []string
	// Ctx packages host blocking operations (dials, RPC calls, channel
	// waits) that must thread a context.Context so a long-running server
	// can cancel them; context.Background()/TODO() roots are confined to
	// package main, tests, and waived compat shims (ctxflow).
	Ctx []string
	// Lock packages carry the mutex discipline of the metric registry,
	// the cache store, and the fleet scheduler: no lock value copies, no
	// Lock without a same-function Unlock, no blocking operation while a
	// lock is held (lockcheck).
	Lock []string
	// Hot packages are the surrogate scoring inner loop; allocation-
	// causing constructs on paths reachable from the scoring roots are
	// flagged there (allocpath).
	Hot []string
	// HotRoots names the entry points whose call graphs define the
	// scoring paths inside the hot packages.
	HotRoots *regexp.Regexp
}{
	Deterministic: []string{
		"internal/anneal",
		"internal/gbt",
		"internal/sampler",
		"internal/acq",
		"internal/nn",
		"internal/rng",
		"internal/prior",
		"internal/space",
		"internal/telemetry",
	},
	RNGSeam:   "internal/rng",
	ClockSeam: "internal/telemetry",
	Pool: []string{
		"internal/parallel",
		"internal/fleet",
		"internal/measure",
		"internal/telemetry",
		"internal/server",
		"cmd/glimpsetop",
	},
	Ctx: []string{
		"internal/fleet",
		"internal/measure",
		"internal/rpc",
		"internal/cache",
		"internal/server",
		"internal/telemetry",
		"cmd/glimpsetop",
	},
	Lock: []string{
		"internal/telemetry",
		"internal/cache",
		"internal/fleet",
		"internal/measure",
		"internal/parallel",
		"internal/tlog",
		"internal/server",
		"internal/tuner",
		"cmd/glimpsetop",
	},
	Hot: []string{
		"internal/gbt",
		"internal/nn",
		"internal/acq",
		"internal/anneal",
		"internal/sampler",
	},
	HotRoots: regexp.MustCompile(`^(Predict|Score|Infer|Select|Run|Sample|Forward)`),
}

// inScope reports whether the package path falls under any suffix in the
// list.
func inScope(pkgPath string, list []string) bool {
	for _, suffix := range list {
		if hasSuffixPath(pkgPath, suffix) {
			return true
		}
	}
	return false
}
