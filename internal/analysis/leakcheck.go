package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeakCheck requires every `go` statement in the pool layers (Scope.Pool
// — the only packages rawgo lets spawn goroutines at all) to have a
// provable join or cancel path, so a long-running server cannot
// accumulate leak-by-construction workers. A goroutine is considered
// joined when any of these shapes is visible:
//
//   - WaitGroup pairing: `wg.Add(n)` precedes the `go` statement in the
//     same function and the goroutine body calls `wg.Done()` (usually
//     deferred) on the same WaitGroup;
//   - ctx binding: the body receives from `<-ctx.Done()` for some
//     context.Context, so cancellation terminates it;
//   - done-channel: the body receives from a channel (a quit/done wait);
//   - channel drain: the body ranges over a channel, terminating when the
//     producer closes it;
//   - bounded handoff: the body sends on a channel created in the
//     spawning function with nonzero buffer capacity, the
//     result-collector idiom where the buffer guarantees the send (and
//     hence the goroutine) completes.
//
// Anything else — accept loops bounded only by a listener close, fire-
// and-forget serve loops — must carry a //glint:ignore leakcheck waiver
// stating what bounds the goroutine's lifetime.
var LeakCheck = &Analyzer{
	Name: "leakcheck",
	Doc:  "require a provable join/cancel path (WaitGroup pairing, ctx.Done, done-channel, channel drain) for every goroutine in the pool layers",
	Run:  runLeakCheck,
}

func runLeakCheck(p *Pass) {
	if !inScope(p.Pkg.Path, Scope.Pool) {
		return
	}
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body := goBody(p, g, decls)
				if body == nil {
					p.Reportf(g.Pos(), "goroutine body is not visible in this package; spawn a literal or package-local function so its join path can be checked")
					return true
				}
				if !goroutineJoined(p, fd, g, body) {
					p.Reportf(g.Pos(), "goroutine has no provable join or cancel path (WaitGroup Add/Done pairing, ctx.Done receive, done-channel, or range over a closed channel); a leaked worker outlives its session")
				}
				return true
			})
		}
	}
}

// goBody resolves the spawned function's body: a literal's block, or the
// declaration of a package-local named function.
func goBody(p *Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[p.Pkg.Info.Uses[fun]]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[p.Pkg.Info.Uses[fun.Sel]]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// goroutineJoined applies the join-path heuristics documented on LeakCheck.
func goroutineJoined(p *Pass, enclosing *ast.FuncDecl, g *ast.GoStmt, body *ast.BlockStmt) bool {
	// WaitGroup pairing: Add before the go statement, Done in the body.
	added := map[string]bool{}
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() {
			return true
		}
		if path, ok := waitGroupMethod(p, call, "Add"); ok {
			added[path] = true
		}
		return true
	})
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if path, ok := waitGroupMethod(p, n, "Done"); ok && added[path] {
				joined = true
			}
		case *ast.UnaryExpr:
			// Any receive counts: <-ctx.Done(), <-quit, <-timer.C.
			if n.Op == token.ARROW && isChanExpr(p, n.X) {
				joined = true
			}
		case *ast.RangeStmt:
			if isChanExpr(p, n.X) {
				joined = true
			}
		case *ast.SendStmt:
			if localBufferedChan(p, enclosing, n.Chan) {
				joined = true
			}
		}
		return true
	})
	return joined
}

// waitGroupMethod reports whether call is `<path>.<name>()` on a
// sync.WaitGroup, returning the rendered receiver path.
func waitGroupMethod(p *Pass, call *ast.CallExpr, name string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return "", false
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !typePathIs(sig.Recv().Type(), "sync", "WaitGroup") {
		return "", false
	}
	return exprPath(sel.X), true
}

// exprPath renders a selector chain of plain identifiers ("s.mu",
// "swg") for textual matching; non-ident components yield "".
func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprPath(e.X)
	case *ast.StarExpr:
		return exprPath(e.X)
	}
	return ""
}

func isChanExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// localBufferedChan reports whether e names a channel declared in the
// enclosing function via make(chan T, n) with a nonzero buffer.
func localBufferedChan(p *Pass, enclosing *ast.FuncDecl, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := identObj(p, id)
	if obj == nil || obj.Pos() < enclosing.Body.Pos() || obj.Pos() > enclosing.Body.End() {
		return false
	}
	buffered := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || buffered {
			return !buffered
		}
		for i, lhs := range assign.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || identObj(p, lid) != obj || i >= len(assign.Rhs) {
				continue
			}
			call, ok := assign.Rhs[i].(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			if fid, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := p.Pkg.Info.Uses[fid].(*types.Builtin); ok && b.Name() == "make" {
					if !isZeroConst(p, call.Args[1]) {
						buffered = true
					}
				}
			}
		}
		return true
	})
	return buffered
}
