package nn

import (
	"encoding/json"
	"fmt"

	"github.com/neuralcompile/glimpse/internal/mat"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// Network is a feed-forward stack of layers.
type Network struct {
	Layers []Layer
}

// NewMLP builds a multilayer perceptron with the given layer widths
// (e.g. widths = [in, h1, h2, out]) and a hidden activation constructor.
// The output layer is linear.
func NewMLP(widths []int, hidden func() *Activation, g *rng.RNG) *Network {
	if len(widths) < 2 {
		panic("nn: NewMLP needs at least input and output widths")
	}
	net := &Network{}
	for i := 0; i < len(widths)-1; i++ {
		net.Layers = append(net.Layers, NewDense(widths[i], widths[i+1], g.Split(fmt.Sprintf("dense%d", i))))
		if i < len(widths)-2 {
			net.Layers = append(net.Layers, hidden())
		}
	}
	return net
}

// Forward runs a batch through all layers.
func (n *Network) Forward(x *mat.Matrix) *mat.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Predict evaluates the network on a single feature vector.
func (n *Network) Predict(x []float64) []float64 {
	out := n.Forward(mat.NewFromData(1, len(x), append([]float64(nil), x...)))
	return out.Row(0)
}

// InferBatch runs a batch through all layers without touching the
// training caches, so it is safe to call from multiple goroutines on a
// frozen network. It computes exactly what Forward computes.
func (n *Network) InferBatch(x *mat.Matrix) *mat.Matrix {
	for _, l := range n.Layers {
		x = l.Infer(x)
	}
	return x
}

// Infer evaluates the network on a single feature vector without caching;
// the thread-safe counterpart of Predict.
func (n *Network) Infer(x []float64) []float64 {
	out := n.InferBatch(mat.NewFromData(1, len(x), append([]float64(nil), x...)))
	return out.Row(0)
}

// Backward propagates ∂L/∂output back through all layers.
func (n *Network) Backward(grad *mat.Matrix) *mat.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all parameter/gradient pairs in layer order.
func (n *Network) Params() []Param {
	var out []Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.ScaleInPlace(0)
	}
}

// NumParams returns the total scalar parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		r, c := p.Value.Dims()
		total += r * c
	}
	return total
}

// layerJSON is the serialized form of one layer.
type layerJSON struct {
	Kind string      `json:"kind"` // "dense" or activation name
	In   int         `json:"in,omitempty"`
	Out  int         `json:"out,omitempty"`
	W    [][]float64 `json:"w,omitempty"`
	B    []float64   `json:"b,omitempty"`
}

// MarshalJSON serializes the network architecture and weights.
func (n *Network) MarshalJSON() ([]byte, error) {
	var layers []layerJSON
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Dense:
			lj := layerJSON{Kind: "dense", In: v.In, Out: v.Out, B: v.B.Row(0)}
			for i := 0; i < v.Out; i++ {
				lj.W = append(lj.W, v.W.Row(i))
			}
			layers = append(layers, lj)
		case *Activation:
			layers = append(layers, layerJSON{Kind: v.Name})
		default:
			return nil, fmt.Errorf("nn: cannot serialize layer %T", l)
		}
	}
	return json.Marshal(layers)
}

// UnmarshalJSON restores a network serialized by MarshalJSON.
func (n *Network) UnmarshalJSON(data []byte) error {
	var layers []layerJSON
	if err := json.Unmarshal(data, &layers); err != nil {
		return err
	}
	n.Layers = nil
	for _, lj := range layers {
		switch lj.Kind {
		case "dense":
			d := &Dense{
				In: lj.In, Out: lj.Out,
				W:     mat.NewFromRows(lj.W),
				B:     mat.NewFromData(1, lj.Out, append([]float64(nil), lj.B...)),
				gradW: mat.New(lj.Out, lj.In),
				gradB: mat.New(1, lj.Out),
			}
			n.Layers = append(n.Layers, d)
		case "relu":
			n.Layers = append(n.Layers, ReLU())
		case "tanh":
			n.Layers = append(n.Layers, Tanh())
		case "sigmoid":
			n.Layers = append(n.Layers, Sigmoid())
		default:
			return fmt.Errorf("nn: unknown layer kind %q", lj.Kind)
		}
	}
	return nil
}
