// Package nn implements the small feed-forward neural networks Glimpse
// needs: the HyperNetwork-style prior distribution generator H (§3.1) and
// the meta-learned neural acquisition function (§3.2). It provides dense
// layers, standard activations, MSE / softmax-cross-entropy losses, SGD and
// Adam optimizers, and JSON serialization — all on top of internal/mat.
//
// Batches are row-major mat.Matrix values: one sample per row.
package nn

import (
	"fmt"
	"math"

	"github.com/neuralcompile/glimpse/internal/mat"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// Layer is one differentiable stage of a network. Forward consumes a batch
// and caches whatever it needs; Backward consumes ∂L/∂output and returns
// ∂L/∂input, accumulating parameter gradients internally.
type Layer interface {
	Forward(x *mat.Matrix) *mat.Matrix
	Backward(grad *mat.Matrix) *mat.Matrix
	// Infer is Forward without caching state for Backward: it only reads
	// the layer's parameters, so concurrent Infer calls are safe. Used by
	// the parallel acquisition-scoring hot path.
	Infer(x *mat.Matrix) *mat.Matrix
	// Params returns parameter/gradient pairs for the optimizer;
	// activation layers return nil.
	Params() []Param
}

// Param couples a parameter matrix with its accumulated gradient.
type Param struct {
	Value *mat.Matrix
	Grad  *mat.Matrix
}

// Dense is a fully connected layer: y = x·Wᵀ + b.
type Dense struct {
	In, Out int
	W       *mat.Matrix // Out×In
	B       *mat.Matrix // 1×Out
	gradW   *mat.Matrix
	gradB   *mat.Matrix
	lastX   *mat.Matrix
}

// NewDense builds a dense layer with Glorot-uniform initial weights.
func NewDense(in, out int, g *rng.RNG) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:     mat.New(out, in),
		B:     mat.New(1, out),
		gradW: mat.New(out, in),
		gradB: mat.New(1, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := 0; i < out; i++ {
		for j := 0; j < in; j++ {
			d.W.Set(i, j, (2*g.Float64()-1)*limit)
		}
	}
	return d
}

// Forward computes x·Wᵀ + b for a batch x (n×In).
func (d *Dense) Forward(x *mat.Matrix) *mat.Matrix {
	d.lastX = x
	return d.Infer(x)
}

// Infer computes x·Wᵀ + b without caching the input for Backward.
func (d *Dense) Infer(x *mat.Matrix) *mat.Matrix {
	if x.Cols() != d.In {
		panic(fmt.Sprintf("nn: Dense forward %d features, want %d", x.Cols(), d.In))
	}
	out := x.Mul(d.W.T())
	for i := 0; i < out.Rows(); i++ {
		row := out.RawRow(i)
		for j := range row {
			row[j] += d.B.At(0, j)
		}
	}
	return out
}

// Backward accumulates ∂L/∂W and ∂L/∂b and returns ∂L/∂x.
func (d *Dense) Backward(grad *mat.Matrix) *mat.Matrix {
	if d.lastX == nil {
		panic("nn: Dense backward before forward")
	}
	d.gradW.AddInPlace(grad.T().Mul(d.lastX))
	for i := 0; i < grad.Rows(); i++ {
		row := grad.RawRow(i)
		for j := range row {
			d.gradB.Set(0, j, d.gradB.At(0, j)+row[j])
		}
	}
	return grad.Mul(d.W)
}

// Params exposes the weights and bias to the optimizer.
func (d *Dense) Params() []Param {
	return []Param{{d.W, d.gradW}, {d.B, d.gradB}}
}

// Activation is an elementwise nonlinearity with derivative computed from
// the cached forward output.
type Activation struct {
	Name  string
	fn    func(float64) float64
	deriv func(y float64) float64 // derivative expressed in terms of output y
	lastY *mat.Matrix
}

// ReLU returns a rectified linear activation layer.
func ReLU() *Activation {
	return &Activation{
		Name: "relu",
		fn:   func(x float64) float64 { return math.Max(0, x) },
		deriv: func(y float64) float64 {
			if y > 0 {
				return 1
			}
			return 0
		},
	}
}

// Tanh returns a hyperbolic tangent activation layer.
func Tanh() *Activation {
	return &Activation{
		Name:  "tanh",
		fn:    math.Tanh,
		deriv: func(y float64) float64 { return 1 - y*y },
	}
}

// Sigmoid returns a logistic activation layer.
func Sigmoid() *Activation {
	return &Activation{
		Name:  "sigmoid",
		fn:    func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		deriv: func(y float64) float64 { return y * (1 - y) },
	}
}

// Forward applies the nonlinearity elementwise.
func (a *Activation) Forward(x *mat.Matrix) *mat.Matrix {
	a.lastY = x.Apply(a.fn)
	return a.lastY
}

// Infer applies the nonlinearity without caching the output for Backward.
func (a *Activation) Infer(x *mat.Matrix) *mat.Matrix {
	return x.Apply(a.fn)
}

// Backward scales the upstream gradient by the local derivative.
func (a *Activation) Backward(grad *mat.Matrix) *mat.Matrix {
	if a.lastY == nil {
		panic("nn: Activation backward before forward")
	}
	return grad.Hadamard(a.lastY.Apply(a.deriv))
}

// Params reports no trainable parameters.
func (a *Activation) Params() []Param { return nil }
