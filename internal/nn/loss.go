package nn

import (
	"fmt"
	"math"

	"github.com/neuralcompile/glimpse/internal/mat"
)

// MSELoss returns the mean-squared error over the batch and ∂L/∂pred.
func MSELoss(pred, target *mat.Matrix) (float64, *mat.Matrix) {
	pr, pc := pred.Dims()
	tr, tc := target.Dims()
	if pr != tr || pc != tc {
		panic(fmt.Sprintf("nn: MSELoss %dx%d vs %dx%d", pr, pc, tr, tc))
	}
	diff := pred.Sub(target)
	n := float64(pr * pc)
	loss := 0.0
	for i := 0; i < pr; i++ {
		for _, v := range diff.RawRow(i) {
			loss += v * v
		}
	}
	grad := diff.Scale(2 / n)
	return loss / n, grad
}

// Softmax applies a row-wise softmax with max-subtraction for stability.
func Softmax(logits *mat.Matrix) *mat.Matrix {
	out := logits.Clone()
	for i := 0; i < out.Rows(); i++ {
		row := out.RawRow(i)
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - mx)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return out
}

// CrossEntropyLoss computes the mean softmax cross-entropy against one-hot
// rows of target (each row of target must sum to 1), returning the loss and
// ∂L/∂logits.
func CrossEntropyLoss(logits, target *mat.Matrix) (float64, *mat.Matrix) {
	pr, pc := logits.Dims()
	tr, tc := target.Dims()
	if pr != tr || pc != tc {
		panic(fmt.Sprintf("nn: CrossEntropyLoss %dx%d vs %dx%d", pr, pc, tr, tc))
	}
	probs := Softmax(logits)
	loss := 0.0
	for i := 0; i < pr; i++ {
		p, t := probs.RawRow(i), target.RawRow(i)
		for j, tv := range t {
			if tv > 0 {
				loss -= tv * math.Log(math.Max(p[j], 1e-12))
			}
		}
	}
	// ∂L/∂logits = (softmax - target) / batch.
	grad := probs.Sub(target)
	grad.ScaleInPlace(1 / float64(pr))
	return loss / float64(pr), grad
}

// KLDivergence returns the mean KL(target ‖ pred-probabilities) over rows,
// for distributions already in probability space.
func KLDivergence(target, pred *mat.Matrix) float64 {
	pr, pc := pred.Dims()
	tr, tc := target.Dims()
	if pr != tr || pc != tc {
		panic(fmt.Sprintf("nn: KLDivergence %dx%d vs %dx%d", pr, pc, tr, tc))
	}
	total := 0.0
	for i := 0; i < pr; i++ {
		t, p := target.RawRow(i), pred.RawRow(i)
		for j, tv := range t {
			if tv > 0 {
				total += tv * math.Log(tv/math.Max(p[j], 1e-12))
			}
		}
	}
	return total / float64(pr)
}
