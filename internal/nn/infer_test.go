package nn

import (
	"sync"
	"testing"

	"github.com/neuralcompile/glimpse/internal/rng"
)

// TestInferMatchesPredict pins the cache-free inference path to the
// training-time forward pass.
func TestInferMatchesPredict(t *testing.T) {
	g := rng.New(1)
	net := NewMLP([]int{6, 16, 8, 2}, ReLU, g)
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 6)
		for i := range x {
			x[i] = g.NormFloat64()
		}
		want := net.Predict(x)
		got := net.Infer(x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Infer[%d] = %v want %v", i, got[i], want[i])
			}
		}
	}
}

// TestInferConcurrent exercises the thread-safety contract: many
// goroutines evaluating a frozen network must agree with the serial
// answer (run under -race in `make check`).
func TestInferConcurrent(t *testing.T) {
	g := rng.New(2)
	net := NewMLP([]int{4, 12, 1}, Tanh, g)
	inputs := make([][]float64, 64)
	want := make([]float64, len(inputs))
	for i := range inputs {
		x := make([]float64, 4)
		for j := range x {
			x[j] = g.NormFloat64()
		}
		inputs[i] = x
		want[i] = net.Infer(x)[0]
	}

	var wg sync.WaitGroup
	errs := make(chan string, len(inputs))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, x := range inputs {
				if got := net.Infer(x)[0]; got != want[i] {
					errs <- "concurrent Infer diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}
