package nn

import (
	"math"

	"github.com/neuralcompile/glimpse/internal/mat"
)

// Optimizer updates network parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity []*mat.Matrix
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum}
}

// Step applies one SGD update to every parameter.
func (o *SGD) Step(params []Param) {
	if o.velocity == nil {
		o.velocity = make([]*mat.Matrix, len(params))
		for i, p := range params {
			r, c := p.Value.Dims()
			o.velocity[i] = mat.New(r, c)
		}
	}
	for i, p := range params {
		v := o.velocity[i]
		v.ScaleInPlace(o.Momentum)
		v.AddScaledInPlace(-o.LR, p.Grad)
		p.Value.AddInPlace(v)
	}
}

// Adam is the Adam optimizer (Kingma & Ba).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  []*mat.Matrix
}

// NewAdam returns an Adam optimizer with standard defaults for the betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update to every parameter.
func (o *Adam) Step(params []Param) {
	if o.m == nil {
		o.m = make([]*mat.Matrix, len(params))
		o.v = make([]*mat.Matrix, len(params))
		for i, p := range params {
			r, c := p.Value.Dims()
			o.m[i] = mat.New(r, c)
			o.v[i] = mat.New(r, c)
		}
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range params {
		m, v := o.m[i], o.v[i]
		r, c := p.Value.Dims()
		for row := 0; row < r; row++ {
			for col := 0; col < c; col++ {
				g := p.Grad.At(row, col)
				mNew := o.Beta1*m.At(row, col) + (1-o.Beta1)*g
				vNew := o.Beta2*v.At(row, col) + (1-o.Beta2)*g*g
				m.Set(row, col, mNew)
				v.Set(row, col, vNew)
				update := o.LR * (mNew / bc1) / (math.Sqrt(vNew/bc2) + o.Eps)
				p.Value.Set(row, col, p.Value.At(row, col)-update)
			}
		}
	}
}

// ClipGradients scales all gradients so their global L2 norm is at most max.
func ClipGradients(params []Param, max float64) {
	total := 0.0
	for _, p := range params {
		r, c := p.Grad.Dims()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				g := p.Grad.At(i, j)
				total += g * g
			}
		}
	}
	norm := math.Sqrt(total)
	if norm <= max || norm == 0 {
		return
	}
	scale := max / norm
	for _, p := range params {
		p.Grad.ScaleInPlace(scale)
	}
}
