package nn

import (
	"encoding/json"
	"math"
	"testing"

	"github.com/neuralcompile/glimpse/internal/mat"
	"github.com/neuralcompile/glimpse/internal/rng"
)

func TestDenseForwardShape(t *testing.T) {
	g := rng.New(1)
	d := NewDense(3, 2, g)
	x := mat.New(5, 3)
	y := d.Forward(x)
	if y.Rows() != 5 || y.Cols() != 2 {
		t.Fatalf("out dims %dx%d want 5x2", y.Rows(), y.Cols())
	}
}

func TestDenseForwardKnown(t *testing.T) {
	d := &Dense{In: 2, Out: 1,
		W: mat.NewFromRows([][]float64{{2, 3}}), B: mat.NewFromData(1, 1, []float64{1}),
		gradW: mat.New(1, 2), gradB: mat.New(1, 1)}
	y := d.Forward(mat.NewFromRows([][]float64{{1, 1}, {2, 0}}))
	if y.At(0, 0) != 6 || y.At(1, 0) != 5 {
		t.Fatalf("forward = %v", y)
	}
}

// numericalGradCheck verifies backprop gradients against finite differences
// on a 2-layer MLP with MSE loss.
func TestBackpropNumericalGradient(t *testing.T) {
	g := rng.New(2)
	net := NewMLP([]int{3, 4, 2}, Tanh, g)
	x := mat.NewFromRows([][]float64{{0.5, -0.3, 0.8}, {0.1, 0.9, -0.2}})
	y := mat.NewFromRows([][]float64{{1, 0}, {0, 1}})

	net.ZeroGrad()
	pred := net.Forward(x)
	_, grad := MSELoss(pred, y)
	net.Backward(grad)

	const eps = 1e-6
	for pi, p := range net.Params() {
		r, c := p.Value.Dims()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				orig := p.Value.At(i, j)
				p.Value.Set(i, j, orig+eps)
				lp, _ := MSELoss(net.Forward(x), y)
				p.Value.Set(i, j, orig-eps)
				lm, _ := MSELoss(net.Forward(x), y)
				p.Value.Set(i, j, orig)
				numGrad := (lp - lm) / (2 * eps)
				anaGrad := p.Grad.At(i, j)
				if math.Abs(numGrad-anaGrad) > 1e-5*(1+math.Abs(numGrad)) {
					t.Fatalf("param %d (%d,%d): analytic %g vs numeric %g", pi, i, j, anaGrad, numGrad)
				}
			}
		}
	}
}

func TestFitLearnsXOR(t *testing.T) {
	g := rng.New(3)
	net := NewMLP([]int{2, 8, 1}, Tanh, g)
	x := mat.NewFromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := mat.NewFromRows([][]float64{{0}, {1}, {1}, {0}})
	loss := Fit(net, x, y, TrainConfig{Epochs: 2000, Optimizer: NewAdam(0.01)}, g)
	if loss > 0.01 {
		t.Fatalf("XOR final loss = %g want < 0.01", loss)
	}
	for i := 0; i < 4; i++ {
		pred := net.Predict(x.Row(i))[0]
		if math.Abs(pred-y.At(i, 0)) > 0.2 {
			t.Fatalf("XOR pred[%d] = %g want %g", i, pred, y.At(i, 0))
		}
	}
}

func TestFitLearnsRegression(t *testing.T) {
	// y = 2a - 3b + 1, learnable by a linear model.
	g := rng.New(4)
	n := 200
	x := mat.New(n, 2)
	y := mat.New(n, 1)
	for i := 0; i < n; i++ {
		a, b := g.NormFloat64(), g.NormFloat64()
		x.SetRow(i, []float64{a, b})
		y.Set(i, 0, 2*a-3*b+1)
	}
	net := NewMLP([]int{2, 1}, ReLU, g) // single linear layer
	loss := Fit(net, x, y, TrainConfig{Epochs: 300, BatchSize: 32, Optimizer: NewAdam(0.05)}, g)
	if loss > 1e-3 {
		t.Fatalf("regression loss = %g", loss)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	logits := mat.NewFromRows([][]float64{{1, 2, 3}, {1000, 1000, 1000}, {-500, 0, 500}})
	p := Softmax(logits)
	for i := 0; i < p.Rows(); i++ {
		sum := 0.0
		for _, v := range p.RawRow(i) {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax out of range: %v", p.RawRow(i))
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestCrossEntropyGradientDirection(t *testing.T) {
	logits := mat.NewFromRows([][]float64{{2, 0, 0}})
	target := mat.NewFromRows([][]float64{{0, 1, 0}})
	loss, grad := CrossEntropyLoss(logits, target)
	if loss <= 0 {
		t.Fatalf("loss = %g want > 0", loss)
	}
	// Gradient should push logit 1 up (negative grad) and logit 0 down.
	if grad.At(0, 1) >= 0 {
		t.Fatalf("grad for target class = %g want < 0", grad.At(0, 1))
	}
	if grad.At(0, 0) <= 0 {
		t.Fatalf("grad for wrong class = %g want > 0", grad.At(0, 0))
	}
}

func TestKLDivergence(t *testing.T) {
	p := mat.NewFromRows([][]float64{{0.5, 0.5}})
	if got := KLDivergence(p, p); math.Abs(got) > 1e-12 {
		t.Fatalf("KL(p‖p) = %g want 0", got)
	}
	q := mat.NewFromRows([][]float64{{0.9, 0.1}})
	if got := KLDivergence(p, q); got <= 0 {
		t.Fatalf("KL(p‖q) = %g want > 0", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := rng.New(5)
	net := NewMLP([]int{3, 5, 2}, ReLU, g)
	in := []float64{0.1, 0.2, 0.3}
	want := net.Predict(in)

	data, err := json.Marshal(net)
	if err != nil {
		t.Fatal(err)
	}
	var restored Network
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	got := restored.Predict(in)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("restored pred %v want %v", got, want)
		}
	}
	if restored.NumParams() != net.NumParams() {
		t.Fatalf("param count %d want %d", restored.NumParams(), net.NumParams())
	}
}

func TestUnmarshalRejectsUnknownKind(t *testing.T) {
	var net Network
	if err := json.Unmarshal([]byte(`[{"kind":"conv9000"}]`), &net); err == nil {
		t.Fatal("unknown layer kind accepted")
	}
}

func TestClipGradients(t *testing.T) {
	gmat := mat.NewFromData(1, 2, []float64{3, 4}) // norm 5
	params := []Param{{Value: mat.New(1, 2), Grad: gmat}}
	ClipGradients(params, 1)
	norm := math.Hypot(gmat.At(0, 0), gmat.At(0, 1))
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("clipped norm = %g want 1", norm)
	}
	// Under the cap: unchanged.
	ClipGradients(params, 10)
	norm2 := math.Hypot(gmat.At(0, 0), gmat.At(0, 1))
	if math.Abs(norm2-1) > 1e-12 {
		t.Fatalf("norm changed under cap: %g", norm2)
	}
}

func TestSGDMomentumMoves(t *testing.T) {
	v := mat.NewFromData(1, 1, []float64{1})
	grad := mat.NewFromData(1, 1, []float64{1})
	params := []Param{{Value: v, Grad: grad}}
	opt := NewSGD(0.1, 0.9)
	opt.Step(params)
	if v.At(0, 0) >= 1 {
		t.Fatalf("SGD did not descend: %g", v.At(0, 0))
	}
	first := 1 - v.At(0, 0)
	opt.Step(params)
	second := first + v.At(0, 0) // step size of second update
	_ = second
	// With momentum the second step should be larger than the first.
	stepTwo := (1 - first) - v.At(0, 0)
	if stepTwo <= first {
		t.Fatalf("momentum not accelerating: first %g second %g", first, stepTwo)
	}
}

func TestNumParams(t *testing.T) {
	g := rng.New(6)
	net := NewMLP([]int{3, 4, 2}, ReLU, g)
	// dense(3→4): 12+4, dense(4→2): 8+2 ⇒ 26.
	if got := net.NumParams(); got != 26 {
		t.Fatalf("NumParams = %d want 26", got)
	}
}
