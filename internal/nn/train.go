package nn

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/mat"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	// Loss computes (loss, grad) for a batch; defaults to MSELoss.
	Loss func(pred, target *mat.Matrix) (float64, *mat.Matrix)
	// ClipNorm, when positive, clips global gradient norm before each step.
	ClipNorm float64
	// OnEpoch, when set, is invoked with (epoch, meanLoss) after each epoch.
	OnEpoch func(epoch int, loss float64)
}

// Fit trains the network on (x, y) pairs with mini-batch gradient descent.
// It returns the mean loss of the final epoch.
func Fit(net *Network, x, y *mat.Matrix, cfg TrainConfig, g *rng.RNG) float64 {
	if x.Rows() != y.Rows() {
		panic(fmt.Sprintf("nn: Fit with %d inputs but %d targets", x.Rows(), y.Rows()))
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 || cfg.BatchSize > x.Rows() {
		cfg.BatchSize = x.Rows()
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam(1e-3)
	}
	loss := cfg.Loss
	if loss == nil {
		loss = MSELoss
	}

	n := x.Rows()
	last := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := g.Perm(n)
		totalLoss, batches := 0.0, 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			bx := mat.New(end-start, x.Cols())
			by := mat.New(end-start, y.Cols())
			for i, idx := range perm[start:end] {
				bx.SetRow(i, x.RawRow(idx))
				by.SetRow(i, y.RawRow(idx))
			}
			net.ZeroGrad()
			pred := net.Forward(bx)
			l, grad := loss(pred, by)
			net.Backward(grad)
			if cfg.ClipNorm > 0 {
				ClipGradients(net.Params(), cfg.ClipNorm)
			}
			cfg.Optimizer.Step(net.Params())
			totalLoss += l
			batches++
		}
		last = totalLoss / float64(batches)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, last)
		}
	}
	return last
}
