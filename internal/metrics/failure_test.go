package metrics

import (
	"strings"
	"testing"
)

func expectPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

// The evaluation arithmetic panics on domain errors rather than returning
// NaN: a silent NaN would propagate into every downstream geomean and
// corrupt a whole results table.
func TestDomainPanics(t *testing.T) {
	expectPanic(t, "Geomean(zero)", func() { Geomean([]float64{1, 0, 2}) })
	expectPanic(t, "Geomean(negative)", func() { Geomean([]float64{-1}) })
	expectPanic(t, "Reduction(zero baseline)", func() { Reduction(0, 1) })
	expectPanic(t, "Reduction(negative baseline)", func() { Reduction(-2, 1) })
	expectPanic(t, "Speedup(zero value)", func() { Speedup(1, 0) })
	expectPanic(t, "Speedup(negative value)", func() { Speedup(1, -1) })
}

func TestGeomeanEmptyIsZero(t *testing.T) {
	if got := Geomean(nil); got != 0 {
		t.Fatalf("Geomean(nil) = %g, want 0", got)
	}
}

func TestAddRowfUnknownTypeFallsBack(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRowf(struct{ X int }{7})
	if !strings.Contains(tb.String(), "{7}") {
		t.Fatalf("unknown cell type not rendered via %%v:\n%s", tb.String())
	}
}

func TestTableShortRowPads(t *testing.T) {
	tb := NewTable("t", "a", "b", "c")
	tb.AddRow("only")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "only") {
		t.Fatalf("short row mangled: %q", last)
	}
	// A row shorter than the header must not panic String() and must keep
	// the column count: the rendered row is padded with empty cells.
	if len(strings.Fields(last)) != 1 {
		t.Fatalf("padding cells should be empty, got %q", last)
	}
}

func TestTableEmptyNoRows(t *testing.T) {
	tb := NewTable("", "h1", "h2")
	out := tb.String()
	if !strings.Contains(out, "h1") || !strings.Contains(out, "----") {
		t.Fatalf("headerless render broken:\n%q", out)
	}
}
