// Package metrics implements the evaluation arithmetic of the paper:
// geometric means over (model, GPU) grids, search-time and inference-time
// reductions relative to AutoTVM, the Hyper-Volume score of Eq. 2, and
// fixed-width text tables for the experiment reports.
package metrics

import (
	"fmt"
	"math"
	"strings"
	"unicode/utf8"
)

// Geomean returns the geometric mean of strictly positive values; it
// returns 0 for an empty input.
func Geomean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		if x <= 0 {
			panic(fmt.Sprintf("metrics: Geomean of non-positive %g", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(v)))
}

// Reduction returns the fractional reduction of value versus a baseline:
// (baseline − value) / baseline. Positive means value improved (shrank).
func Reduction(baseline, value float64) float64 {
	if baseline <= 0 {
		panic(fmt.Sprintf("metrics: non-positive baseline %g", baseline))
	}
	return (baseline - value) / baseline
}

// Speedup returns baseline/value (how many times faster value is).
func Speedup(baseline, value float64) float64 {
	if value <= 0 {
		panic(fmt.Sprintf("metrics: non-positive value %g", value))
	}
	return baseline / value
}

// HyperVolume is Eq. 2 of the paper: Search Reduction × Inference
// Reduction × 100, with the reductions given as fractions in [0, 1).
// It summarizes the multi-objective trade-off between compilation speed
// and output-code quality.
func HyperVolume(searchReduction, inferenceReduction float64) float64 {
	return searchReduction * inferenceReduction * 100
}

// Table renders rows as a fixed-width text table with a header.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates an empty table.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		cells = cells[:len(t.Headers)]
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values: strings pass through, floats
// render with %.4g, ints with %d.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// String renders the table. Column widths count runes, not bytes, so
// multi-byte cells (device names, en dashes) stay aligned. Rows set
// directly on the struct may be ragged — longer than the header — without
// breaking rendering.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - utf8.RuneCountInString(c); pad > 0 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		sb.WriteString(strings.Repeat("-", total-2))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
