package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Geomean = %g want 4", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Fatalf("Geomean(nil) = %g", got)
	}
	// Paper check: geomean of Glimpse's Fig. 9a per-model speedups is 6.73×.
	if got := Geomean([]float64{5.83, 6.60, 7.92}); math.Abs(got-6.73) > 0.03 {
		t.Fatalf("Fig9a geomean = %g want ≈6.73", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive input did not panic")
		}
	}()
	Geomean([]float64{1, -1})
}

func TestReductionAndSpeedup(t *testing.T) {
	if got := Reduction(10, 2); got != 0.8 {
		t.Fatalf("Reduction = %g", got)
	}
	if got := Speedup(10, 2); got != 5 {
		t.Fatalf("Speedup = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad baseline did not panic")
		}
	}()
	Reduction(0, 1)
}

// TestHyperVolumeMatchesTable2 checks Eq. 2 against a Table 2 row:
// Glimpse on AlexNet — 82.84% search reduction, 6.94% inference reduction,
// HV 5.7492.
func TestHyperVolumeMatchesTable2(t *testing.T) {
	got := HyperVolume(0.8284, 0.0694)
	if math.Abs(got-5.7491) > 0.01 {
		t.Fatalf("HV = %g want ≈5.749", got)
	}
	// Chameleon AlexNet row: 72.16% × 5.88% = 4.2430.
	got = HyperVolume(0.7216, 0.0588)
	if math.Abs(got-4.2430) > 0.01 {
		t.Fatalf("HV = %g want ≈4.243", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRowf("alpha", 1.5)
	tb.AddRowf("beta", 42)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns align: both data rows start their second column at the same
	// offset.
	if strings.Index(lines[3], "1.5") != strings.Index(lines[4], "42") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRowClipping(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x", "overflow")
	if len(tb.Rows[0]) != 1 {
		t.Fatalf("row not clipped: %v", tb.Rows[0])
	}
}
