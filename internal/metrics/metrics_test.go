package metrics

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Geomean = %g want 4", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Fatalf("Geomean(nil) = %g", got)
	}
	// Paper check: geomean of Glimpse's Fig. 9a per-model speedups is 6.73×.
	if got := Geomean([]float64{5.83, 6.60, 7.92}); math.Abs(got-6.73) > 0.03 {
		t.Fatalf("Fig9a geomean = %g want ≈6.73", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive input did not panic")
		}
	}()
	Geomean([]float64{1, -1})
}

func TestReductionAndSpeedup(t *testing.T) {
	if got := Reduction(10, 2); got != 0.8 {
		t.Fatalf("Reduction = %g", got)
	}
	if got := Speedup(10, 2); got != 5 {
		t.Fatalf("Speedup = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad baseline did not panic")
		}
	}()
	Reduction(0, 1)
}

// TestHyperVolumeMatchesTable2 checks Eq. 2 against a Table 2 row:
// Glimpse on AlexNet — 82.84% search reduction, 6.94% inference reduction,
// HV 5.7492.
func TestHyperVolumeMatchesTable2(t *testing.T) {
	got := HyperVolume(0.8284, 0.0694)
	if math.Abs(got-5.7491) > 0.01 {
		t.Fatalf("HV = %g want ≈5.749", got)
	}
	// Chameleon AlexNet row: 72.16% × 5.88% = 4.2430.
	got = HyperVolume(0.7216, 0.0588)
	if math.Abs(got-4.2430) > 0.01 {
		t.Fatalf("HV = %g want ≈4.243", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRowf("alpha", 1.5)
	tb.AddRowf("beta", 42)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns align: both data rows start their second column at the same
	// offset.
	if strings.Index(lines[3], "1.5") != strings.Index(lines[4], "42") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRowClipping(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x", "overflow")
	if len(tb.Rows[0]) != 1 {
		t.Fatalf("row not clipped: %v", tb.Rows[0])
	}
}

// TestTableMultiByteAlignment: widths must count runes, not bytes — a
// UTF-8 cell ("α–β" is 3 runes, 7 bytes) must not push its column wide.
func TestTableMultiByteAlignment(t *testing.T) {
	tb := NewTable("", "name", "value")
	tb.AddRow("α–β", "1")
	tb.AddRow("abc", "2")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	// Rows: header, rule, two data rows. Both data rows place their second
	// column at the same rune offset.
	off1 := runeIndex(lines[2], "1")
	off2 := runeIndex(lines[3], "2")
	if off1 != off2 {
		t.Fatalf("multi-byte cell misaligned (%d vs %d):\n%s", off1, off2, tb.String())
	}
}

func runeIndex(s, sub string) int {
	byteIdx := strings.Index(s, sub)
	if byteIdx < 0 {
		return -1
	}
	return utf8.RuneCountInString(s[:byteIdx])
}

// TestTableNoHeaders: a degenerate table (no headers, no rows) must render
// without panicking — the divider previously repeated a negative count.
func TestTableNoHeaders(t *testing.T) {
	tb := NewTable("")
	out := tb.String()
	if strings.Contains(out, "-") {
		t.Fatalf("empty table drew a divider: %q", out)
	}
	tb2 := NewTable("just a title")
	if got := tb2.String(); !strings.Contains(got, "just a title") {
		t.Fatalf("title lost: %q", got)
	}
}

// TestTableRaggedRows: rows assigned directly to the struct (wider than
// the header) must render instead of panicking on width lookup.
func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "only")
	tb.Rows = append(tb.Rows, []string{"a", "b", "c"})
	tb.Rows = append(tb.Rows, []string{"x"})
	out := tb.String()
	for _, want := range []string{"a", "b", "c", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ragged row cell %q missing:\n%s", want, out)
		}
	}
}

// TestTableEmptyRows: a table with headers and zero rows still renders a
// header and divider.
func TestTableEmptyRows(t *testing.T) {
	tb := NewTable("t", "h1", "h2")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines) != 3 { // title, header, rule
		t.Fatalf("empty table has %d lines: %q", len(lines), tb.String())
	}
}
