// Package faults wraps a measure.Measurer with deterministic fault
// injection, so every failure mode of fleet-scale tuning — flaky boards,
// hung RPC links, devices dying mid-campaign, corrupted telemetry — is
// reproducible in tests without real flakiness.
//
// Every injection decision is drawn from an rng stream keyed by the seed,
// the task name, and that task's call sequence number, never from shared
// mutable randomness. Two runs with the same seed therefore inject exactly
// the same faults regardless of goroutine scheduling, which is what makes
// fault-injected fleet tests assertable.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// ErrTransient is the (wrapped) error injected for transient failures —
// the kind a retry should cure.
var ErrTransient = errors.New("faults: injected transient error")

// ErrCrashed is the (wrapped) error injected once a device has "died";
// unlike ErrTransient it never goes away, so retries must exhaust and the
// caller must fail over or record the loss.
var ErrCrashed = errors.New("faults: device crashed")

// Config selects which faults to inject. Rates are probabilities in [0,1].
type Config struct {
	// Seed drives every injection decision (keyed further by task and call
	// sequence, so injection is independent of goroutine scheduling).
	Seed int64
	// TransientErrorRate is the per-call probability of ErrTransient.
	TransientErrorRate float64
	// HangRate is the per-call probability that the batch hangs for Hang
	// (default 30s) before succeeding; a context deadline cuts it short
	// with ctx.Err(). This is the half-open-connection simulation.
	HangRate float64
	Hang     time.Duration
	// CrashAfterCalls kills the device for a task after that task's first
	// N calls: call N+1 onward returns ErrCrashed forever. The counter is
	// per task (not global) so the crash point does not depend on how
	// concurrent tasks interleave. 0 disables.
	CrashAfterCalls int
	// CrashTasks restricts CrashAfterCalls to the named tasks
	// (task.Name() keys); nil crashes every task.
	CrashTasks map[string]bool
	// CorruptRate is the per-result probability of corrupting a valid
	// measurement with NaN/Inf/negative values while leaving it marked
	// valid — the poison a sanitizer must catch.
	CorruptRate float64
}

// Stats counts injected faults.
type Stats struct {
	Calls      int
	Transients int
	Hangs      int
	Crashes    int
	Corrupted  int // individual results corrupted
}

// Injector is a fault-injecting measure.Measurer wrapper. It implements
// measure.ContextMeasurer so injected hangs respect deadlines.
type Injector struct {
	inner measure.Measurer
	cfg   Config

	mu    sync.Mutex
	seq   map[string]int // per-task call counter
	stats Stats
}

// New wraps inner with fault injection per cfg.
func New(inner measure.Measurer, cfg Config) *Injector {
	if cfg.Hang <= 0 {
		cfg.Hang = 30 * time.Second
	}
	return &Injector{inner: inner, cfg: cfg, seq: map[string]int{}}
}

// DeviceName identifies the wrapped device.
func (in *Injector) DeviceName() string { return in.inner.DeviceName() }

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// MeasureBatch injects faults around the wrapped measurer.
func (in *Injector) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	return in.MeasureBatchContext(context.Background(), task, sp, idxs)
}

// MeasureBatchContext injects faults, honoring ctx during injected hangs.
func (in *Injector) MeasureBatchContext(ctx context.Context, task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	in.mu.Lock()
	in.seq[task.Name()]++
	seq := in.seq[task.Name()]
	in.stats.Calls++
	in.mu.Unlock()
	g := rng.New(in.cfg.Seed).Split(fmt.Sprintf("faults/%s/%d", task.Name(), seq))

	if in.cfg.CrashAfterCalls > 0 && seq > in.cfg.CrashAfterCalls &&
		(in.cfg.CrashTasks == nil || in.cfg.CrashTasks[task.Name()]) {
		in.count(func(s *Stats) { s.Crashes++ })
		return nil, fmt.Errorf("%w: %s call %d (device died after %d)",
			ErrCrashed, task.Name(), seq, in.cfg.CrashAfterCalls)
	}
	if g.Bool(in.cfg.HangRate) {
		in.count(func(s *Stats) { s.Hangs++ })
		t := time.NewTimer(in.cfg.Hang)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("faults: injected hang on %s cut off: %w", task.Name(), ctx.Err())
		case <-t.C:
			// Hang elapsed without a deadline; fall through and succeed.
		}
	}
	if g.Bool(in.cfg.TransientErrorRate) {
		in.count(func(s *Stats) { s.Transients++ })
		return nil, fmt.Errorf("%w: %s call %d", ErrTransient, task.Name(), seq)
	}

	var results []gpusim.Result
	var err error
	if cm, ok := in.inner.(measure.ContextMeasurer); ok {
		results, err = cm.MeasureBatchContext(ctx, task, sp, idxs)
	} else {
		results, err = in.inner.MeasureBatch(task, sp, idxs)
	}
	if err != nil {
		return nil, err
	}
	if in.cfg.CorruptRate > 0 {
		results = in.corrupt(g, results)
	}
	return results, nil
}

// corrupt flips a fraction of valid results to NaN/Inf/negative values
// while leaving Valid set — simulating a board returning garbage counters.
func (in *Injector) corrupt(g *rng.RNG, results []gpusim.Result) []gpusim.Result {
	out := append([]gpusim.Result(nil), results...)
	n := 0
	for i := range out {
		if !out[i].Valid || !g.Bool(in.cfg.CorruptRate) {
			continue
		}
		switch g.Intn(4) {
		case 0:
			out[i].GFLOPS = math.NaN()
		case 1:
			out[i].GFLOPS = math.Inf(1)
		case 2:
			out[i].GFLOPS = -out[i].GFLOPS
		default:
			out[i].TimeMS = -out[i].TimeMS
		}
		n++
	}
	if n > 0 {
		in.count(func(s *Stats) { s.Corrupted += n })
	}
	return out
}

func (in *Injector) count(f func(*Stats)) {
	in.mu.Lock()
	f(&in.stats)
	in.mu.Unlock()
}
