package faults

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
)

func TestChurnCallPhasesCycle(t *testing.T) {
	task, sp, idxs := setup(t)
	c := NewChurn(measure.MustNewLocal(hwspec.TitanXp), ChurnConfig{
		Phases: []Phase{{Calls: 2}, {Calls: 3, Down: true}},
	})
	want := []bool{false, false, true, true, true, false, false, true, true, true}
	for i, down := range want {
		_, err := c.MeasureBatch(task, sp, idxs)
		if down && !errors.Is(err, ErrDown) {
			t.Fatalf("call %d: expected ErrDown, got %v", i, err)
		}
		if !down && err != nil {
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	st := c.Stats()
	if st.Calls != 10 || st.Downs != 6 {
		t.Fatalf("stats %+v, want 10 calls / 6 downs", st)
	}
}

func TestChurnTerminalPhaseIsForever(t *testing.T) {
	task, sp, idxs := setup(t)
	c := NewChurn(measure.MustNewLocal(hwspec.TitanXp), ChurnConfig{
		Phases: []Phase{{Calls: 2}, {Down: true}}, // crash after 2 calls
	})
	for i := 0; i < 2; i++ {
		if _, err := c.MeasureBatch(task, sp, idxs); err != nil {
			t.Fatalf("warmup call %d failed: %v", i, err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := c.MeasureBatch(task, sp, idxs); !errors.Is(err, ErrDown) {
			t.Fatalf("post-crash call %d: %v", i, err)
		}
	}
}

func TestChurnDelayHonorsContext(t *testing.T) {
	task, sp, idxs := setup(t)
	c := NewChurn(measure.MustNewLocal(hwspec.TitanXp), ChurnConfig{
		Phases: []Phase{{Delay: 30 * time.Second}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.MeasureBatchContext(ctx, task, sp, idxs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline error, got %v", err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("injected delay ignored the deadline for %v", e)
	}
}

func TestChurnSlowDegradeGrows(t *testing.T) {
	task, sp, idxs := setup(t)
	c := NewChurn(measure.MustNewLocal(hwspec.TitanXp), ChurnConfig{
		Phases: []Phase{{Calls: 1}, {Growth: time.Millisecond}},
	})
	if _, err := c.MeasureBatch(task, sp, idxs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.MeasureBatch(task, sp, idxs); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Delayed != 3 { // degrade calls after the first (0×Growth) one
		t.Fatalf("Delayed = %d, want 3", st.Delayed)
	}
}

func TestScenariosDeterministicAndSized(t *testing.T) {
	a := Flap(7, 20, 0.25, time.Millisecond, time.Second, time.Second)
	b := Flap(7, 20, 0.25, time.Millisecond, time.Second, time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identically-seeded Flap scenarios differ")
	}
	churned := 0
	for i := range a.Configs {
		if a.churned(i) {
			churned++
		}
	}
	if churned != 5 {
		t.Fatalf("flap 0.25 over 20 endpoints churned %d, want 5", churned)
	}
	if c := Flap(8, 20, 0.25, time.Millisecond, time.Second, time.Second); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	// frac > 0 always affects at least one endpoint.
	if s := Crash(1, 3, 0.01, 0, 4); func() int {
		n := 0
		for i := range s.Configs {
			if s.churned(i) {
				n++
			}
		}
		return n
	}() != 1 {
		t.Fatal("tiny frac churned nothing")
	}
}

func TestComposeLayersDisjointly(t *testing.T) {
	flap := Flap(1, 10, 0.3, time.Millisecond, time.Second, time.Second)
	crash := Crash(2, 10, 0.3, time.Millisecond, 4)
	mixed, err := Compose("mixed", flap, crash)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Name != "mixed" || mixed.Size() != 10 {
		t.Fatalf("composed scenario %q size %d", mixed.Name, mixed.Size())
	}
	for i := range mixed.Configs {
		if flap.churned(i) && !reflect.DeepEqual(mixed.Configs[i].Phases, flap.Configs[i].Phases) {
			t.Fatalf("endpoint %d: first scenario's schedule not preserved", i)
		}
		if mixed.Configs[i].PerMeasurement != time.Millisecond {
			t.Fatalf("endpoint %d lost its service time", i)
		}
	}
	composedChurn := 0
	for i := range mixed.Configs {
		if mixed.churned(i) {
			composedChurn++
		}
	}
	if composedChurn < 3 {
		t.Fatalf("composition churned only %d endpoints", composedChurn)
	}
	if _, err := Compose("bad", flap, Healthy(4, 0)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := Compose("empty"); err == nil {
		t.Fatal("empty composition accepted")
	}
}

func TestScenarioByName(t *testing.T) {
	for _, name := range []string{"none", "flap", "spike", "slow-degrade", "crash", "churn"} {
		sc, err := ScenarioByName(name, 3, 12, 0.25, time.Millisecond)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Size() != 12 {
			t.Fatalf("%s: size %d", name, sc.Size())
		}
	}
	if _, err := ScenarioByName("meteor", 3, 12, 0.25, 0); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestScenarioWrapPassesHealthyThrough(t *testing.T) {
	local := measure.MustNewLocal(hwspec.TitanXp)
	sc := Scenario{Name: "none", Configs: make([]ChurnConfig, 2)}
	if m := sc.Wrap(0, local); m != measure.Measurer(local) {
		t.Fatal("zero-config endpoint was wrapped")
	}
	if m := sc.Wrap(5, local); m != measure.Measurer(local) {
		t.Fatal("out-of-range endpoint was wrapped")
	}
	sc.Configs[1].Phases = []Phase{{Down: true}}
	if _, ok := sc.Wrap(1, local).(*Churn); !ok {
		t.Fatal("churned endpoint not wrapped")
	}
}
