package faults

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func setup(t *testing.T) (workload.Task, *space.Space, []int64) {
	t.Helper()
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	g := rng.New(11)
	idxs := []int64{sp.RandomIndex(g), sp.RandomIndex(g)}
	return task, sp, idxs
}

// errorSequence records which calls fail over n calls.
func errorSequence(t *testing.T, in *Injector, n int) []bool {
	t.Helper()
	task, sp, idxs := setup(t)
	out := make([]bool, n)
	for i := range out {
		_, err := in.MeasureBatch(task, sp, idxs)
		out[i] = err != nil
	}
	return out
}

func TestInjectionDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{Seed: 42, TransientErrorRate: 0.3}
	a := errorSequence(t, New(measure.MustNewLocal(hwspec.TitanXp), cfg), 64)
	b := errorSequence(t, New(measure.MustNewLocal(hwspec.TitanXp), cfg), 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs across identically-seeded injectors", i)
		}
	}
	failures := 0
	for _, f := range a {
		if f {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Fatalf("transient rate 0.3 produced %d/%d failures", failures, len(a))
	}
}

func TestInjectionIndependentOfTaskInterleaving(t *testing.T) {
	taskA, spA, idxsA := setup(t)
	taskB, err := workload.TaskByIndex(workload.ResNet18, 9)
	if err != nil {
		t.Fatal(err)
	}
	spB := space.MustForTask(taskB)
	idxsB := []int64{spB.RandomIndex(rng.New(3))}
	cfg := Config{Seed: 7, TransientErrorRate: 0.4}

	// Run A's calls first, then B's.
	in1 := New(measure.MustNewLocal(hwspec.TitanXp), cfg)
	var seq1 []bool
	for i := 0; i < 16; i++ {
		_, err := in1.MeasureBatch(taskA, spA, idxsA)
		seq1 = append(seq1, err != nil)
	}
	for i := 0; i < 16; i++ {
		_, err := in1.MeasureBatch(taskB, spB, idxsB)
		seq1 = append(seq1, err != nil)
	}
	// Interleave them; per-task outcomes must be identical.
	in2 := New(measure.MustNewLocal(hwspec.TitanXp), cfg)
	var seqA, seqB []bool
	for i := 0; i < 16; i++ {
		_, errB := in2.MeasureBatch(taskB, spB, idxsB)
		seqB = append(seqB, errB != nil)
		_, errA := in2.MeasureBatch(taskA, spA, idxsA)
		seqA = append(seqA, errA != nil)
	}
	for i := 0; i < 16; i++ {
		if seqA[i] != seq1[i] {
			t.Fatalf("task A call %d depends on interleaving", i)
		}
		if seqB[i] != seq1[16+i] {
			t.Fatalf("task B call %d depends on interleaving", i)
		}
	}
}

func TestCrashAfterCallsIsPermanentAndPerTask(t *testing.T) {
	task, sp, idxs := setup(t)
	in := New(measure.MustNewLocal(hwspec.TitanXp),
		Config{Seed: 1, CrashAfterCalls: 2, CrashTasks: map[string]bool{task.Name(): true}})
	for i := 0; i < 2; i++ {
		if _, err := in.MeasureBatch(task, sp, idxs); err != nil {
			t.Fatalf("call %d before crash point failed: %v", i+1, err)
		}
	}
	for i := 0; i < 3; i++ {
		_, err := in.MeasureBatch(task, sp, idxs)
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("call %d after crash: err = %v, want ErrCrashed", 3+i, err)
		}
	}
	// A task outside CrashTasks never crashes.
	other, err := workload.TaskByIndex(workload.ResNet18, 9)
	if err != nil {
		t.Fatal(err)
	}
	spO := space.MustForTask(other)
	for i := 0; i < 5; i++ {
		if _, err := in.MeasureBatch(other, spO, []int64{0}); err != nil {
			t.Fatalf("uncrashed task failed: %v", err)
		}
	}
	if s := in.Stats(); s.Crashes != 3 {
		t.Fatalf("Crashes = %d, want 3", s.Crashes)
	}
}

func TestCorruptionProducesPoisonValues(t *testing.T) {
	task, sp, _ := setup(t)
	// Pick configurations that measure as valid, so there is a measurement
	// worth corrupting.
	local := measure.MustNewLocal(hwspec.TitanXp)
	g := rng.New(21)
	var idxs []int64
	for len(idxs) < 2 {
		idx := sp.RandomIndex(g)
		res, err := local.MeasureBatch(task, sp, []int64{idx})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Valid {
			idxs = append(idxs, idx)
		}
	}
	in := New(measure.MustNewLocal(hwspec.TitanXp), Config{Seed: 5, CorruptRate: 1})
	poisoned := 0
	for call := 0; call < 8 && poisoned == 0; call++ {
		results, err := in.MeasureBatch(task, sp, idxs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if !r.Valid {
				continue
			}
			if math.IsNaN(r.GFLOPS) || math.IsInf(r.GFLOPS, 0) || r.GFLOPS < 0 || r.TimeMS < 0 {
				poisoned++
			}
		}
	}
	if poisoned == 0 {
		t.Fatal("CorruptRate=1 produced no poison values in valid results")
	}
	if in.Stats().Corrupted == 0 {
		t.Fatal("corruption not counted")
	}
}

func TestInjectedHangRespectsDeadline(t *testing.T) {
	task, sp, idxs := setup(t)
	in := New(measure.MustNewLocal(hwspec.TitanXp),
		Config{Seed: 1, HangRate: 1, Hang: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := in.MeasureBatchContext(ctx, task, sp, idxs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang not cut off: took %v", elapsed)
	}
	if in.Stats().Hangs != 1 {
		t.Fatalf("Hangs = %d", in.Stats().Hangs)
	}
}
