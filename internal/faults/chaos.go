package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// ErrDown is the (wrapped) error a churned endpoint returns while its
// schedule has it offline. It is transient-class: the device comes back
// when the down phase ends, so retries and failover are the right cure.
var ErrDown = errors.New("faults: device offline (churn)")

// Phase is one segment of a churn schedule. A phase ends after Calls
// calls or after For wall-clock time, whichever is configured (setting
// both ends it on whichever trips first); a phase with neither is
// terminal and lasts forever. Phases cycle unless the last one is
// terminal.
type Phase struct {
	Calls int           // phase length in batch calls (0: not call-bounded)
	For   time.Duration // phase length in wall time (0: not time-bounded)
	// Down fails every call in the phase with ErrDown.
	Down bool
	// Delay adds per-call latency (a latency spike when large).
	Delay time.Duration
	// Growth adds Growth × (calls already served in this phase) of extra
	// latency per call — the slow-degrade pattern of a board heading
	// toward failure.
	Growth time.Duration
}

func (p Phase) terminal() bool { return p.Calls <= 0 && p.For <= 0 }

// ChurnConfig is the schedule for one endpoint. The zero value is a
// permanently healthy endpoint with instant service.
type ChurnConfig struct {
	// PerMeasurement is the simulated service time per configuration
	// measured — what makes fleet throughput a meaningful quantity.
	PerMeasurement time.Duration
	// Phases cycle for the life of the endpoint (empty: always up).
	Phases []Phase
}

// ChurnStats counts what a churned endpoint actually did.
type ChurnStats struct {
	Calls   int // batch calls received
	Downs   int // calls failed by a down phase
	Delayed int // calls that served extra injected latency
}

// Churn wraps a Measurer with a deterministic availability/latency
// schedule. Unlike Injector (per-call probabilistic faults keyed by task),
// Churn models the life of one endpoint: phases of downtime, latency
// spikes, and slow degradation advance with the endpoint's global call
// sequence and wall clock, which is what fleet-level rerouting reacts to.
// It implements measure.ContextMeasurer; injected delays respect context
// cancellation.
type Churn struct {
	inner measure.Measurer
	cfg   ChurnConfig

	mu         sync.Mutex
	phase      int       // index into cfg.Phases
	phaseCalls int       // calls served in the current phase
	phaseStart time.Time // set on first call of a time-bounded phase
	stats      ChurnStats
}

// NewChurn wraps inner with the given schedule.
func NewChurn(inner measure.Measurer, cfg ChurnConfig) *Churn {
	return &Churn{inner: inner, cfg: cfg}
}

// DeviceName identifies the wrapped device.
func (c *Churn) DeviceName() string { return c.inner.DeviceName() }

// Stats returns a snapshot of the churn counters.
func (c *Churn) Stats() ChurnStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// MeasureBatch applies the schedule around the wrapped measurer.
func (c *Churn) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	return c.MeasureBatchContext(context.Background(), task, sp, idxs)
}

// step advances the schedule by one call and returns the phase governing
// it plus how many calls that phase had already served.
func (c *Churn) step() (Phase, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Calls++
	if len(c.cfg.Phases) == 0 {
		return Phase{}, 0
	}
	now := time.Now()
	for {
		p := c.cfg.Phases[c.phase]
		if p.terminal() {
			break
		}
		if p.For > 0 && c.phaseStart.IsZero() {
			c.phaseStart = now
		}
		expired := (p.Calls > 0 && c.phaseCalls >= p.Calls) ||
			(p.For > 0 && now.Sub(c.phaseStart) >= p.For)
		if !expired {
			break
		}
		c.phase = (c.phase + 1) % len(c.cfg.Phases)
		c.phaseCalls = 0
		c.phaseStart = time.Time{}
	}
	p := c.cfg.Phases[c.phase]
	served := c.phaseCalls
	c.phaseCalls++
	return p, served
}

// MeasureBatchContext applies the schedule, honoring ctx during injected
// latency.
func (c *Churn) MeasureBatchContext(ctx context.Context, task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	p, served := c.step()
	if p.Down {
		c.mu.Lock()
		c.stats.Downs++
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrDown, c.inner.DeviceName())
	}
	delay := c.cfg.PerMeasurement*time.Duration(len(idxs)) +
		p.Delay + p.Growth*time.Duration(served)
	if delay > 0 {
		if p.Delay > 0 || p.Growth > 0 {
			c.mu.Lock()
			c.stats.Delayed++
			c.mu.Unlock()
		}
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("faults: churn delay on %s cut off: %w", c.inner.DeviceName(), ctx.Err())
		case <-t.C:
		}
	}
	if cm, ok := c.inner.(measure.ContextMeasurer); ok {
		return cm.MeasureBatchContext(ctx, task, sp, idxs)
	}
	return c.inner.MeasureBatch(task, sp, idxs)
}

// Scenario is one named churn schedule for a whole fleet of endpoints:
// Configs[i] governs endpoint i. Constructors draw every schedule from the
// seed, so a scenario is reproducible even though wall-clock phase
// boundaries are not — determinism of tuning *results* under churn is the
// fleet scheduler's contract, pinned by its tests.
type Scenario struct {
	Name    string
	Configs []ChurnConfig
}

// Size returns the number of endpoints the scenario covers.
func (s Scenario) Size() int { return len(s.Configs) }

// Wrap churn-wraps endpoint i's measurer. Out-of-range indices (a fleet
// larger than the scenario) and zero-value configs pass m through
// untouched, so healthy endpoints pay nothing.
func (s Scenario) Wrap(i int, m measure.Measurer) measure.Measurer {
	if i < 0 || i >= len(s.Configs) {
		return m
	}
	cfg := s.Configs[i]
	if cfg.PerMeasurement <= 0 && len(cfg.Phases) == 0 {
		return m
	}
	return NewChurn(m, cfg)
}

// churned reports whether endpoint i already has a non-trivial schedule.
func (s Scenario) churned(i int) bool {
	return len(s.Configs[i].Phases) > 0
}

// pick selects frac×n distinct endpoints from the seeded stream (at least
// one whenever frac > 0).
func pick(g *rng.RNG, n int, frac float64) []int {
	want := int(frac*float64(n) + 0.5)
	if frac > 0 && want == 0 {
		want = 1
	}
	if want > n {
		want = n
	}
	return g.Perm(n)[:want]
}

// Healthy is the no-fault scenario: every endpoint up, serving each
// measurement in the given service time.
func Healthy(n int, service time.Duration) Scenario {
	s := Scenario{Name: "none", Configs: make([]ChurnConfig, n)}
	for i := range s.Configs {
		s.Configs[i].PerMeasurement = service
	}
	return s
}

// Flap makes frac of n endpoints cycle between up and down phases whose
// lengths are drawn around meanUp/meanDown (±50%, seeded per endpoint).
func Flap(seed int64, n int, frac float64, service, meanUp, meanDown time.Duration) Scenario {
	s := Healthy(n, service)
	s.Name = "flap"
	g := rng.New(seed).Split("chaos/flap")
	for _, i := range pick(g.Split("pick"), n, frac) {
		eg := g.Split(fmt.Sprintf("ep/%d", i))
		jitter := func(mean time.Duration) time.Duration {
			return time.Duration(float64(mean) * (0.5 + eg.Float64()))
		}
		s.Configs[i].Phases = []Phase{
			{For: jitter(meanUp)},
			{For: jitter(meanDown), Down: true},
		}
	}
	return s
}

// Spike gives frac of n endpoints periodic latency spikes: bursts of
// spikeLen calls each delayed by spike, between quiet stretches of
// 6–14 calls (seeded per endpoint).
func Spike(seed int64, n int, frac float64, service, spike time.Duration, spikeLen int) Scenario {
	s := Healthy(n, service)
	s.Name = "spike"
	if spikeLen <= 0 {
		spikeLen = 3
	}
	g := rng.New(seed).Split("chaos/spike")
	for _, i := range pick(g.Split("pick"), n, frac) {
		eg := g.Split(fmt.Sprintf("ep/%d", i))
		s.Configs[i].Phases = []Phase{
			{Calls: 6 + eg.Intn(9)},
			{Calls: spikeLen, Delay: spike},
		}
	}
	return s
}

// SlowDegrade makes frac of n endpoints serve a healthy warmup of 4–12
// calls and then degrade without recovery: every further call is `step`
// slower than the one before — the straggler pattern speculation exists
// for.
func SlowDegrade(seed int64, n int, frac float64, service, step time.Duration) Scenario {
	s := Healthy(n, service)
	s.Name = "slow-degrade"
	g := rng.New(seed).Split("chaos/slow-degrade")
	for _, i := range pick(g.Split("pick"), n, frac) {
		eg := g.Split(fmt.Sprintf("ep/%d", i))
		s.Configs[i].Phases = []Phase{
			{Calls: 4 + eg.Intn(9)},
			{Growth: step}, // terminal: degrades forever
		}
	}
	return s
}

// Crash kills frac of n endpoints permanently after a seeded warmup of
// 1–afterCalls calls: every later call fails with ErrDown, forever.
func Crash(seed int64, n int, frac float64, service time.Duration, afterCalls int) Scenario {
	s := Healthy(n, service)
	s.Name = "crash"
	if afterCalls < 1 {
		afterCalls = 1
	}
	g := rng.New(seed).Split("chaos/crash")
	for _, i := range pick(g.Split("pick"), n, frac) {
		eg := g.Split(fmt.Sprintf("ep/%d", i))
		s.Configs[i].Phases = []Phase{
			{Calls: 1 + eg.Intn(afterCalls)},
			{Down: true}, // terminal: never comes back
		}
	}
	return s
}

// Compose layers scenarios over the same fleet: for each endpoint the
// first scenario with a non-trivial schedule wins, so scenarios built
// with disjoint seeds compose into mixed churn (e.g. some endpoints
// flapping while others degrade). All scenarios must cover the same
// number of endpoints.
func Compose(name string, scenarios ...Scenario) (Scenario, error) {
	if len(scenarios) == 0 {
		return Scenario{}, fmt.Errorf("faults: Compose needs at least one scenario")
	}
	n := scenarios[0].Size()
	out := Scenario{Name: name, Configs: make([]ChurnConfig, n)}
	for _, sc := range scenarios {
		if sc.Size() != n {
			return Scenario{}, fmt.Errorf("faults: Compose size mismatch: %s has %d endpoints, want %d",
				sc.Name, sc.Size(), n)
		}
		for i, cfg := range sc.Configs {
			if out.Configs[i].PerMeasurement == 0 {
				out.Configs[i].PerMeasurement = cfg.PerMeasurement
			}
			if !out.churned(i) && len(cfg.Phases) > 0 {
				out.Configs[i].Phases = cfg.Phases
			}
		}
	}
	return out, nil
}

// ScenarioByName builds a named scenario with representative defaults —
// the -chaos flag of cmd/fleet and cmd/measured. Known names: none, flap,
// spike, slow-degrade, crash, churn (flap+spike+slow-degrade composed).
func ScenarioByName(name string, seed int64, n int, frac float64, service time.Duration) (Scenario, error) {
	if frac <= 0 {
		frac = 0.1
	}
	switch name {
	case "", "none":
		return Healthy(n, service), nil
	case "flap":
		return Flap(seed, n, frac, service, 150*time.Millisecond, 250*time.Millisecond), nil
	case "spike":
		return Spike(seed, n, frac, service, 25*time.Millisecond, 3), nil
	case "slow-degrade":
		return SlowDegrade(seed, n, frac, service, 2*time.Millisecond), nil
	case "crash":
		return Crash(seed, n, frac, service, 8), nil
	case "churn":
		return Compose("churn",
			Flap(seed, n, frac/2, service, 150*time.Millisecond, 250*time.Millisecond),
			Spike(seed+1, n, frac/2, service, 25*time.Millisecond, 3),
			SlowDegrade(seed+2, n, frac/2, service, 2*time.Millisecond))
	default:
		return Scenario{}, fmt.Errorf("faults: unknown chaos scenario %q (have none, flap, spike, slow-degrade, crash, churn)", name)
	}
}
