package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		n := 1000
		hits := make([]int32, n)
		For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	For(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for non-positive n")
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	// With one worker the loop must run on the calling goroutine in order.
	var order []int
	For(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order = %v", order)
		}
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		got := Map(workers, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic swallowed")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v", r)
		}
	}()
	For(4, 100, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

func TestResolveAndDefaults(t *testing.T) {
	old := DefaultWorkers()
	defer SetDefaultWorkers(old)

	SetDefaultWorkers(3)
	if got := Resolve(0); got != 3 {
		t.Fatalf("Resolve(0) = %d want 3", got)
	}
	if got := Resolve(-1); got != 3 {
		t.Fatalf("Resolve(-1) = %d want 3", got)
	}
	if got := Resolve(7); got != 7 {
		t.Fatalf("Resolve(7) = %d want 7", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.NumCPU() {
		t.Fatalf("reset default = %d want NumCPU %d", got, runtime.NumCPU())
	}
}

func TestForDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		For(8, 64, func(int) {})
	}
	// Allow some scheduler noise, but 50×8 leaked goroutines would show.
	if after := runtime.NumGoroutine(); after > before+20 {
		t.Fatalf("goroutines grew %d -> %d", before, after)
	}
}
