// Package parallel provides the bounded worker pool shared by every
// CPU-hot stage of the tuning pipeline: annealing chains, GBT split
// search, batch surrogate prediction, ensemble vote filtering, and
// neural acquisition scoring.
//
// The package enforces one contract everywhere it is used: output must
// be byte-identical regardless of the worker count. Callers achieve
// that by (a) giving each unit of work its own RNG stream split from
// the caller's seed, and (b) reducing per-unit results in index order
// after the pool drains (For/Map preserve slot order, so a serial
// reduction over the result slice is deterministic by construction).
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker count used when a caller
// passes a non-positive count. It is what the CLIs' -workers flag sets.
var defaultWorkers atomic.Int64

func init() { defaultWorkers.Store(int64(runtime.NumCPU())) }

// SetDefaultWorkers sets the process-wide default worker count.
// Non-positive values reset it to runtime.NumCPU().
func SetDefaultWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the process-wide default worker count.
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// Resolve maps a per-call worker count to an effective one: positive
// counts pass through, anything else resolves to the process default.
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return DefaultWorkers()
}

// regionCount / itemCount tally pool activity since process start; they
// feed the /telemetryz introspection endpoint and cost two atomic adds
// per For call (not per item).
var (
	regionCount atomic.Int64
	itemCount   atomic.Int64
)

// PoolStats is a point-in-time snapshot of pool activity.
type PoolStats struct {
	// Regions is the number of For/Map parallel regions entered.
	Regions int64 `json:"regions"`
	// Items is the total number of work items dispatched across regions.
	Items int64 `json:"items"`
}

// Stats snapshots pool activity since process start.
func Stats() PoolStats {
	return PoolStats{Regions: regionCount.Load(), Items: itemCount.Load()}
}

// For runs fn(i) for every i in [0, n) on at most workers goroutines.
// workers <= 0 resolves to DefaultWorkers(). With one worker (or n <= 1)
// fn runs inline on the calling goroutine, so serial behavior is exactly
// the plain loop. A panic in any fn is captured and re-raised on the
// calling goroutine after all workers stop.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	regionCount.Add(1)
	itemCount.Add(int64(n))
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var next atomic.Int64
	var panicked atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, capturedPanic{r})
				}
			}()
			for panicked.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(fmt.Sprintf("parallel: worker panicked: %v", p.(capturedPanic).v))
	}
}

// capturedPanic wraps a recovered value so atomic.Value accepts any type.
type capturedPanic struct{ v any }

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order. The same determinism and panic
// semantics as For apply.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(workers, n, func(i int) { out[i] = fn(i) })
	return out
}
