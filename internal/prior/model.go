package prior

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/mat"
	"github.com/neuralcompile/glimpse/internal/nn"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Model is the trained prior distribution generator H: one hypernetwork
// head per template kind, sharing the (layer spec, Blueprint) input.
type Model struct {
	Emb  *blueprint.Embedding
	Nets map[workload.Kind]*nn.Network
}

// TrainConfig controls offline training of H.
type TrainConfig struct {
	Dataset DatasetConfig
	Epochs  int // default 300
	Hidden  int // hidden width, default 48
}

func (c *TrainConfig) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 300
	}
	if c.Hidden <= 0 {
		c.Hidden = 48
	}
}

// Train collects the offline dataset on the training GPU pool and fits one
// hypernetwork per template kind. The target GPU must not be in gpus —
// that is the whole point of the Blueprint transfer setting.
func Train(emb *blueprint.Embedding, gpus []hwspec.Spec, tasks []workload.Task,
	cfg TrainConfig, g *rng.RNG) (*Model, error) {

	cfg.defaults()
	examples, err := BuildDataset(gpus, emb, tasks, cfg.Dataset, g.Split("dataset"))
	if err != nil {
		return nil, err
	}
	byKind := map[workload.Kind][]Example{}
	for _, ex := range examples {
		byKind[ex.Kind] = append(byKind[ex.Kind], ex)
	}

	m := &Model{Emb: emb, Nets: make(map[workload.Kind]*nn.Network)}
	inDim := InputDim(emb.Dim)
	for _, kind := range sortedKinds(byKind) {
		exs := byKind[kind]
		layout := MustLayoutFor(kind)
		x := mat.New(len(exs), inDim)
		y := mat.New(len(exs), layout.TotalLen)
		for i, ex := range exs {
			if len(ex.Input) != inDim {
				return nil, fmt.Errorf("prior: example input dim %d want %d", len(ex.Input), inDim)
			}
			x.SetRow(i, ex.Input)
			y.SetRow(i, ex.Target)
		}
		net := nn.NewMLP([]int{inDim, cfg.Hidden, cfg.Hidden, layout.TotalLen}, nn.Tanh,
			g.Split(fmt.Sprintf("net/%v", kind)))
		nn.Fit(net, x, y, nn.TrainConfig{
			Epochs:    cfg.Epochs,
			BatchSize: 16,
			Optimizer: nn.NewAdam(2e-3),
			ClipNorm:  10,
		}, g.Split(fmt.Sprintf("fit/%v", kind)))
		m.Nets[kind] = net
	}
	return m, nil
}

// Distributions runs H for one task on one (possibly unseen) target GPU,
// returning the per-dimension prior distributions.
func (m *Model) Distributions(task workload.Task, spec hwspec.Spec) (*Dist, error) {
	net, ok := m.Nets[task.Kind]
	if !ok {
		return nil, fmt.Errorf("prior: model has no head for kind %v", task.Kind)
	}
	layout, err := LayoutFor(task.Kind)
	if err != nil {
		return nil, err
	}
	params := net.Predict(TaskInput(task, m.Emb.Embed(spec)))
	return NewDist(layout, params)
}
