package prior

import (
	"math"
	"testing"

	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// TestScorerMatchesLogProb pins the cached scorer to the reference
// implementation across random configurations of every template kind.
func TestScorerMatchesLogProb(t *testing.T) {
	for _, l := range []int{7, 13, 17} {
		task, err := workload.TaskByIndex(workload.ResNet18, l)
		if err != nil {
			t.Fatal(err)
		}
		d, sp := handDist(t, task)
		scorer := d.Scorer(sp)
		g := rng.New(int64(l))
		for i := 0; i < 100; i++ {
			idx := sp.RandomIndex(g)
			cfg := sp.FromIndex(idx)
			want := d.LogProb(sp, cfg)
			if got := scorer.LogProb(cfg); math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s: scorer %g != logprob %g", task.Name(), got, want)
			}
			if got := scorer.LogProbIndex(idx); math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s: scorer-by-index %g != logprob %g", task.Name(), got, want)
			}
		}
	}
}

func BenchmarkScorerLogProb(b *testing.B) {
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		b.Fatal(err)
	}
	sp := space.MustForTask(task)
	layout := MustLayoutFor(task.Kind)
	params := make([]float64, layout.TotalLen)
	d, err := NewDist(layout, params)
	if err != nil {
		b.Fatal(err)
	}
	scorer := d.Scorer(sp)
	g := rng.New(1)
	idxs := make([]int64, 256)
	for i := range idxs {
		idxs[i] = sp.RandomIndex(g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scorer.LogProbIndex(idxs[i%len(idxs)])
	}
}
