// Package prior implements Glimpse's prior distribution generator H (§3.1):
// a HyperNetwork-style neural model that maps (layer specification,
// hardware Blueprint) to per-dimension prior distributions over the
// configuration space. H is trained offline on a TenSet-like dataset of
// simulated measurements gathered on the training GPU pool, and at tuning
// time supplies both the initial measurement batch and a log-probability
// score that the acquisition function consumes.
//
// Distribution parameterization, per knob:
//   - split knob with P parts → P Gaussians over log2(factor): (μ, logσ)·P
//   - categorical knob with M options → M unnormalized weights
//
// This task-shape-independent parameterization is what lets one H transfer
// across layers whose concrete factorization tables differ.
package prior

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// KnobLayout locates one knob's parameters inside a template's flat
// parameter vector.
type KnobLayout struct {
	Name    string
	Kind    space.KnobKind
	Parts   int // split knobs: number of factors
	Options int // categorical knobs: number of options
	Offset  int // start within the parameter vector
	Len     int // parameter count: 2·Parts or Options
}

// Layout is the full parameter layout for one template kind.
type Layout struct {
	Kind     workload.Kind
	Knobs    []KnobLayout
	TotalLen int
}

// layoutSpec describes a template's knob structure once; kept in lockstep
// with internal/space's templates (cross-checked by tests).
type layoutEntry struct {
	name    string
	kind    space.KnobKind
	parts   int
	options int
}

var layoutSpecs = map[workload.Kind][]layoutEntry{
	workload.Conv2D: {
		{space.KnobTileF, space.KindSplit, 4, 0},
		{space.KnobTileY, space.KindSplit, 4, 0},
		{space.KnobTileX, space.KindSplit, 4, 0},
		{space.KnobTileRC, space.KindSplit, 2, 0},
		{space.KnobTileRY, space.KindSplit, 2, 0},
		{space.KnobTileRX, space.KindSplit, 2, 0},
		{space.KnobUnroll, space.KindCategorical, 0, 3},
		{space.KnobUnrollE, space.KindCategorical, 0, 2},
	},
	workload.WinogradConv2D: {
		{space.KnobTileP, space.KindSplit, 4, 0},
		{space.KnobTileCO, space.KindSplit, 4, 0},
		{space.KnobTileCI, space.KindSplit, 2, 0},
		{space.KnobUnroll, space.KindCategorical, 0, 3},
		{space.KnobUnrollE, space.KindCategorical, 0, 2},
	},
	workload.Dense: {
		{space.KnobTileY, space.KindSplit, 3, 0},
		{space.KnobTileK, space.KindSplit, 2, 0},
		{space.KnobUnroll, space.KindCategorical, 0, 3},
		{space.KnobUnrollE, space.KindCategorical, 0, 2},
	},
}

// LayoutFor returns the parameter layout of a template kind.
func LayoutFor(kind workload.Kind) (Layout, error) {
	entries, ok := layoutSpecs[kind]
	if !ok {
		return Layout{}, fmt.Errorf("prior: no layout for kind %v", kind)
	}
	l := Layout{Kind: kind}
	off := 0
	for _, e := range entries {
		kl := KnobLayout{Name: e.name, Kind: e.kind, Parts: e.parts, Options: e.options, Offset: off}
		if e.kind == space.KindSplit {
			kl.Len = 2 * e.parts
		} else {
			kl.Len = e.options
		}
		off += kl.Len
		l.Knobs = append(l.Knobs, kl)
	}
	l.TotalLen = off
	return l, nil
}

// MustLayoutFor is LayoutFor for known-good kinds.
func MustLayoutFor(kind workload.Kind) Layout {
	l, err := LayoutFor(kind)
	if err != nil {
		panic(err)
	}
	return l
}

// CheckSpace verifies a concrete task space matches the layout (same knob
// names, kinds, parts, and option counts, in order).
func (l Layout) CheckSpace(sp *space.Space) error {
	if len(sp.Knobs) != len(l.Knobs) {
		return fmt.Errorf("prior: space has %d knobs, layout %d", len(sp.Knobs), len(l.Knobs))
	}
	for i := range l.Knobs {
		k, lk := &sp.Knobs[i], l.Knobs[i]
		if k.Name != lk.Name || k.Kind != lk.Kind {
			return fmt.Errorf("prior: knob %d is %s/%v, layout says %s/%v", i, k.Name, k.Kind, lk.Name, lk.Kind)
		}
		if k.Kind == space.KindSplit && k.Parts != lk.Parts {
			return fmt.Errorf("prior: knob %s has %d parts, layout %d", k.Name, k.Parts, lk.Parts)
		}
		if k.Kind == space.KindCategorical && len(k.Options) != lk.Options {
			return fmt.Errorf("prior: knob %s has %d options, layout %d", k.Name, len(k.Options), lk.Options)
		}
	}
	return nil
}
