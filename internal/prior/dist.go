package prior

import (
	"fmt"
	"math"
	"sort"

	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
)

// Dist is a set of per-dimension prior distributions over one task's
// configuration space, parameterized by a flat vector in Layout order.
type Dist struct {
	Layout Layout
	Params []float64
}

// minSigma keeps the per-part Gaussians from collapsing.
const minSigma = 0.2

// NewDist validates and wraps a parameter vector.
func NewDist(layout Layout, params []float64) (*Dist, error) {
	if len(params) != layout.TotalLen {
		return nil, fmt.Errorf("prior: %d params, layout wants %d", len(params), layout.TotalLen)
	}
	return &Dist{Layout: layout, Params: params}, nil
}

// splitParams returns (μ, σ) for part p of split knob k.
func (d *Dist) splitParams(k, p int) (mu, sigma float64) {
	kl := d.Layout.Knobs[k]
	mu = d.Params[kl.Offset+2*p]
	sigma = math.Exp(d.Params[kl.Offset+2*p+1])
	if sigma < minSigma {
		sigma = minSigma
	}
	if sigma > 8 {
		sigma = 8
	}
	return mu, sigma
}

// KnobWeights returns an unnormalized weight for every local value of knob
// k in the concrete space: split entries get Π_p N(log2 f_p; μ_p, σ_p),
// categorical options get softplus'd weights.
func (d *Dist) KnobWeights(sp *space.Space, k int) []float64 {
	knob := &sp.Knobs[k]
	kl := d.Layout.Knobs[k]
	out := make([]float64, knob.Size())
	switch knob.Kind {
	case space.KindSplit:
		for i := range out {
			logp := 0.0
			for p, f := range knob.SplitValue(i) {
				mu, sigma := d.splitParams(k, p)
				z := (math.Log2(float64(f)) - mu) / sigma
				logp += -0.5*z*z - math.Log(sigma)
			}
			out[i] = math.Exp(logp)
		}
	case space.KindCategorical:
		for i := range out {
			w := d.Params[kl.Offset+i]
			// softplus keeps weights positive without exp overflow
			out[i] = math.Log1p(math.Exp(mat64Clamp(w, -30, 30)))
		}
	}
	return out
}

// LogProb returns the (unnormalized per-dimension, summed) log prior of a
// configuration: the score the acquisition function consumes.
func (d *Dist) LogProb(sp *space.Space, cfg space.Config) float64 {
	total := 0.0
	for k := range sp.Knobs {
		w := d.KnobWeights(sp, k)
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if sum <= 0 {
			continue
		}
		p := w[cfg[k]] / sum
		if p < 1e-12 {
			p = 1e-12
		}
		total += math.Log(p)
	}
	return total
}

// ArgmaxConfig returns the single highest-prior configuration: the
// per-dimension argmax (the paper enumerates combinations of argmax(f_k)).
func (d *Dist) ArgmaxConfig(sp *space.Space) space.Config {
	cfg := make(space.Config, len(sp.Knobs))
	for k := range sp.Knobs {
		w := d.KnobWeights(sp, k)
		best, bi := w[0], 0
		for i, v := range w[1:] {
			if v > best {
				best, bi = v, i+1
			}
		}
		cfg[k] = bi
	}
	return cfg
}

// Sample draws n distinct configuration indices: the argmax combination
// first, then per-dimension weighted draws (dimensions are independent
// under the prior), deduplicated. It may return fewer than n only if the
// space itself is smaller than n.
func (d *Dist) Sample(sp *space.Space, n int, g *rng.RNG) []int64 {
	if n <= 0 {
		return nil
	}
	weights := make([][]float64, len(sp.Knobs))
	for k := range sp.Knobs {
		weights[k] = d.KnobWeights(sp, k)
	}
	seen := make(map[int64]struct{}, n)
	out := make([]int64, 0, n)
	add := func(idx int64) {
		if _, dup := seen[idx]; !dup {
			seen[idx] = struct{}{}
			out = append(out, idx)
		}
	}
	add(sp.ToIndex(d.ArgmaxConfig(sp)))
	maxTries := 64 * n
	for try := 0; len(out) < n && try < maxTries; try++ {
		cfg := make(space.Config, len(sp.Knobs))
		for k := range sp.Knobs {
			cfg[k] = g.Categorical(weights[k])
		}
		add(sp.ToIndex(cfg))
	}
	// Fall back to uniform draws if the prior is too peaked to fill n.
	for try := 0; len(out) < n && try < maxTries; try++ {
		add(sp.RandomIndex(g))
	}
	if int64(len(out)) > sp.Size() {
		out = out[:sp.Size()]
	}
	return out
}

// Scorer precomputes per-knob log-probability tables for one concrete
// space so LogProb becomes an O(knobs) lookup — the form the simulated-
// annealing energy function needs (it evaluates thousands of candidates
// per batch).
type Scorer struct {
	sp   *space.Space
	logP [][]float64 // [knob][local index] → log normalized probability
}

// Scorer builds the cached scorer for sp.
func (d *Dist) Scorer(sp *space.Space) *Scorer {
	s := &Scorer{sp: sp, logP: make([][]float64, len(sp.Knobs))}
	for k := range sp.Knobs {
		w := d.KnobWeights(sp, k)
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		logs := make([]float64, len(w))
		for i, v := range w {
			p := 0.0
			if sum > 0 {
				p = v / sum
			}
			if p < 1e-12 {
				p = 1e-12
			}
			logs[i] = math.Log(p)
		}
		s.logP[k] = logs
	}
	return s
}

// LogProb returns the cached per-dimension log prior of a configuration;
// it matches Dist.LogProb exactly.
func (s *Scorer) LogProb(cfg space.Config) float64 {
	total := 0.0
	for k, li := range cfg {
		total += s.logP[k][li]
	}
	return total
}

// LogProbIndex is LogProb on a flat configuration index.
func (s *Scorer) LogProbIndex(idx int64) float64 {
	return s.LogProb(s.sp.FromIndex(idx))
}

// TopWeighted returns the m highest-prior-probability values of knob k
// (local indices), best first — used by diagnostics and the beam variant
// of initial sampling.
func (d *Dist) TopWeighted(sp *space.Space, k, m int) []int {
	w := d.KnobWeights(sp, k)
	idx := make([]int, len(w))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return w[idx[a]] > w[idx[b]] })
	if m > len(idx) {
		m = len(idx)
	}
	return idx[:m]
}

func mat64Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
