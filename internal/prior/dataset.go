package prior

import (
	"fmt"
	"math"
	"sort"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Example is one supervised pair for training H: the task/hardware
// conditioning input and the target distribution parameters fitted from
// the best simulated measurements.
type Example struct {
	Kind   workload.Kind
	Input  []float64
	Target []float64
}

// TaskInput builds H's conditioning vector: the log-scaled layer
// specification concatenated with the hardware Blueprint.
func TaskInput(task workload.Task, emb []float64) []float64 {
	spec := task.SpecVector()
	out := make([]float64, 0, len(spec)+len(emb))
	for _, v := range spec {
		out = append(out, math.Log2(1+v))
	}
	return append(out, emb...)
}

// InputDim returns the input width of H for a given Blueprint dimension.
func InputDim(embDim int) int { return workload.SpecVectorLen + embDim }

// DatasetConfig controls offline dataset collection.
type DatasetConfig struct {
	// SamplesPerTask is how many random configurations are measured per
	// (GPU, task) pair. Default 200.
	SamplesPerTask int
	// TopK is how many of the best valid measurements define the target
	// distribution. Default 24.
	TopK int
}

func (c *DatasetConfig) defaults() {
	if c.SamplesPerTask <= 0 {
		c.SamplesPerTask = 200
	}
	if c.TopK <= 0 {
		c.TopK = 24
	}
}

// BuildDataset measures random configurations of every task on every
// training GPU (the TenSet-like corpus [19]) and distills each (GPU, task)
// pair into one training example for H.
func BuildDataset(gpus []hwspec.Spec, emb *blueprint.Embedding, tasks []workload.Task,
	cfg DatasetConfig, g *rng.RNG) ([]Example, error) {

	cfg.defaults()
	var out []Example
	for _, spec := range gpus {
		dev := gpusim.NewDevice(spec)
		bp := emb.Embed(spec)
		for _, task := range tasks {
			sp, err := space.ForTask(task)
			if err != nil {
				return nil, err
			}
			layout, err := LayoutFor(task.Kind)
			if err != nil {
				return nil, err
			}
			if err := layout.CheckSpace(sp); err != nil {
				return nil, err
			}
			target, ok := fitTarget(dev, task, sp, layout, cfg, g.Split(spec.Name+"/"+task.Name()))
			if !ok {
				continue // no valid measurements for this pair
			}
			out = append(out, Example{
				Kind:   task.Kind,
				Input:  TaskInput(task, bp),
				Target: target,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("prior: dataset collection produced no examples")
	}
	return out, nil
}

// fitTarget measures random configs and fits the layout's distribution
// parameters to the top performers.
func fitTarget(dev *gpusim.Device, task workload.Task, sp *space.Space,
	layout Layout, cfg DatasetConfig, g *rng.RNG) ([]float64, bool) {

	type scored struct {
		cfg    space.Config
		gflops float64
	}
	var valid []scored
	for i := 0; i < cfg.SamplesPerTask; i++ {
		c := sp.FromIndex(sp.RandomIndex(g))
		if r := dev.Measure(task, sp, c); r.Valid {
			valid = append(valid, scored{c, r.GFLOPS})
		}
	}
	if len(valid) < 4 {
		return nil, false
	}
	sort.Slice(valid, func(a, b int) bool { return valid[a].gflops > valid[b].gflops })
	top := valid
	if len(top) > cfg.TopK {
		top = top[:cfg.TopK]
	}

	params := make([]float64, layout.TotalLen)
	for k, kl := range layout.Knobs {
		knob := &sp.Knobs[k]
		switch kl.Kind {
		case space.KindSplit:
			for p := 0; p < kl.Parts; p++ {
				var logs []float64
				for _, s := range top {
					f := knob.SplitValue(s.cfg[k])[p]
					logs = append(logs, math.Log2(float64(f)))
				}
				mu := meanOf(logs)
				sigma := stdOf(logs, mu)
				if sigma < 0.25 {
					sigma = 0.25
				}
				params[kl.Offset+2*p] = mu
				params[kl.Offset+2*p+1] = math.Log(sigma)
			}
		case space.KindCategorical:
			counts := make([]float64, kl.Options)
			for _, s := range top {
				counts[s.cfg[k]]++
			}
			for o := 0; o < kl.Options; o++ {
				freq := (counts[o] + 0.5) / (float64(len(top)) + 0.5*float64(kl.Options))
				// Inverse softplus so KnobWeights recovers ≈freq.
				params[kl.Offset+o] = math.Log(math.Expm1(mat64Clamp(freq, 1e-4, 30)))
			}
		}
	}
	return params, true
}

func meanOf(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func stdOf(v []float64, mean float64) float64 {
	s := 0.0
	for _, x := range v {
		d := x - mean
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}
