package prior

import (
	"math"
	"testing"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/nn"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func TestLayoutsMatchEveryTaskSpace(t *testing.T) {
	for _, model := range workload.Models {
		for _, task := range workload.MustTasks(model) {
			sp := space.MustForTask(task)
			layout := MustLayoutFor(task.Kind)
			if err := layout.CheckSpace(sp); err != nil {
				t.Fatalf("%s: %v", task.Name(), err)
			}
		}
	}
}

func TestLayoutTotalLens(t *testing.T) {
	// conv2d: 3 splits×4 parts×2 + 3 splits×2 parts×2 + 3 + 2 = 41.
	if l := MustLayoutFor(workload.Conv2D); l.TotalLen != 41 {
		t.Fatalf("conv2d layout len = %d want 41", l.TotalLen)
	}
	// winograd: 2×4×2 + 1×2×2 + 3 + 2 = 25.
	if l := MustLayoutFor(workload.WinogradConv2D); l.TotalLen != 25 {
		t.Fatalf("winograd layout len = %d want 25", l.TotalLen)
	}
	// dense: 1×3×2 + 1×2×2 + 3 + 2 = 15.
	if l := MustLayoutFor(workload.Dense); l.TotalLen != 15 {
		t.Fatalf("dense layout len = %d want 15", l.TotalLen)
	}
}

func TestNewDistValidatesLength(t *testing.T) {
	layout := MustLayoutFor(workload.Dense)
	if _, err := NewDist(layout, make([]float64, 3)); err == nil {
		t.Fatal("short param vector accepted")
	}
}

// handDist builds a Dist that strongly prefers a specific split pattern.
func handDist(t *testing.T, task workload.Task) (*Dist, *space.Space) {
	t.Helper()
	sp := space.MustForTask(task)
	layout := MustLayoutFor(task.Kind)
	params := make([]float64, layout.TotalLen)
	for _, kl := range layout.Knobs {
		if kl.Kind == space.KindSplit {
			for p := 0; p < kl.Parts; p++ {
				params[kl.Offset+2*p] = 2.0             // prefer factors ≈4
				params[kl.Offset+2*p+1] = math.Log(0.3) // tight
			}
		} else {
			for o := 0; o < kl.Options; o++ {
				params[kl.Offset+o] = float64(o) // prefer the last option
			}
		}
	}
	d, err := NewDist(layout, params)
	if err != nil {
		t.Fatal(err)
	}
	return d, sp
}

func TestKnobWeightsPreferTarget(t *testing.T) {
	task, err := workload.TaskByIndex(workload.ResNet18, 17) // dense 512→1000
	if err != nil {
		t.Fatal(err)
	}
	d, sp := handDist(t, task)
	w := d.KnobWeights(sp, 0) // tile_y over 1000, 3 parts
	knob := &sp.Knobs[0]
	_, best := maxAt(w)
	v := knob.SplitValue(best)
	// The preferred entry should have balanced mid-size factors, not [1,1,1000].
	for _, f := range v {
		if f > 64 {
			t.Fatalf("preferred split %v far from the prior's mean", v)
		}
	}
	// Weights are non-negative and not all equal.
	allEq := true
	for i := 1; i < len(w); i++ {
		if w[i] < 0 {
			t.Fatal("negative weight")
		}
		if w[i] != w[0] {
			allEq = false
		}
	}
	if allEq {
		t.Fatal("weights degenerate")
	}
}

func maxAt(v []float64) (float64, int) {
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return best, bi
}

func TestLogProbHigherForPreferred(t *testing.T) {
	task, err := workload.TaskByIndex(workload.ResNet18, 17)
	if err != nil {
		t.Fatal(err)
	}
	d, sp := handDist(t, task)
	argmax := d.ArgmaxConfig(sp)
	worst := make(space.Config, len(sp.Knobs))
	for k := range sp.Knobs {
		w := d.KnobWeights(sp, k)
		_, bi := maxAt(w)
		// pick the least-weighted entry instead
		wi, worstI := w[0], 0
		for i, x := range w {
			if x < wi {
				wi, worstI = x, i
			}
		}
		_ = bi
		worst[k] = worstI
	}
	if d.LogProb(sp, argmax) <= d.LogProb(sp, worst) {
		t.Fatal("argmax config not preferred by LogProb")
	}
}

func TestSampleDistinctAndInSpace(t *testing.T) {
	task, err := workload.TaskByIndex(workload.AlexNet, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, sp := handDist(t, task)
	g := rng.New(1)
	idxs := d.Sample(sp, 50, g)
	if len(idxs) != 50 {
		t.Fatalf("sampled %d configs want 50", len(idxs))
	}
	seen := map[int64]bool{}
	for _, idx := range idxs {
		if idx < 0 || idx >= sp.Size() {
			t.Fatalf("index %d out of space", idx)
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
	}
	// First sample is the argmax combination.
	if idxs[0] != sp.ToIndex(d.ArgmaxConfig(sp)) {
		t.Fatal("first sample is not the argmax config")
	}
}

func TestSampleTinySpaceTerminates(t *testing.T) {
	task := workload.Task{Model: "toy", Index: 1, Kind: workload.Dense,
		Dense: workload.DenseShape{Batch: 1, In: 2, Out: 2}}
	d, sp := handDist(t, task)
	g := rng.New(2)
	idxs := d.Sample(sp, 1000, g)
	if int64(len(idxs)) > sp.Size() {
		t.Fatalf("sampled %d from space of %d", len(idxs), sp.Size())
	}
}

func TestTaskInputDim(t *testing.T) {
	task, err := workload.TaskByIndex(workload.VGG16, 1)
	if err != nil {
		t.Fatal(err)
	}
	emb := []float64{0.1, -0.2, 0.3}
	in := TaskInput(task, emb)
	if len(in) != InputDim(3) {
		t.Fatalf("input dim %d want %d", len(in), InputDim(3))
	}
	// Embedding is passed through untouched.
	tail := in[len(in)-3:]
	for i, v := range emb {
		if tail[i] != v {
			t.Fatalf("embedding tail %v", tail)
		}
	}
}

// trainSmallModel trains H on a reduced pool for test speed.
func trainSmallModel(t *testing.T, target string) *Model {
	t.Helper()
	specs := hwspec.Registry()
	emb, err := blueprint.Build(specs, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Training pool: a spread of generations, minus the target.
	poolNames := []string{"gtx-1080", "gtx-1080-ti", "rtx-2070", "rtx-2080",
		"titan-rtx", "rtx-3070", "rtx-3080", hwspec.TitanXp, hwspec.RTX2080Ti}
	var pool []hwspec.Spec
	for _, n := range poolNames {
		if n != target {
			pool = append(pool, hwspec.MustByName(n))
		}
	}
	// A handful of tasks spanning all kinds.
	var tasks []workload.Task
	for _, ref := range []struct {
		model string
		l     int
	}{
		{workload.ResNet18, 5}, {workload.ResNet18, 7}, {workload.ResNet18, 8},
		{workload.ResNet18, 13}, {workload.ResNet18, 15}, {workload.ResNet18, 17},
		{workload.AlexNet, 3}, {workload.AlexNet, 8}, {workload.AlexNet, 11},
	} {
		task, err := workload.TaskByIndex(ref.model, ref.l)
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	m, err := Train(emb, pool, tasks, TrainConfig{
		Dataset: DatasetConfig{SamplesPerTask: 150, TopK: 16},
		Epochs:  200,
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPriorBeatsRandomOnUnseenGPU is the core §3.1 claim: initial samples
// drawn from H's prior outperform uniform random samples on a GPU that H
// never trained on.
func TestPriorBeatsRandomOnUnseenGPU(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	target := hwspec.RTX2070Super
	m := trainSmallModel(t, target)
	dev := gpusim.NewDevice(hwspec.MustByName(target))
	g := rng.New(11)

	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	dist, err := m.Distributions(task, dev.Spec)
	if err != nil {
		t.Fatal(err)
	}

	bestOf := func(idxs []int64) float64 {
		best := 0.0
		for _, idx := range idxs {
			if r := dev.MeasureIndex(task, sp, idx); r.Valid && r.GFLOPS > best {
				best = r.GFLOPS
			}
		}
		return best
	}
	priorBest := bestOf(dist.Sample(sp, 40, g.Split("prior")))
	randIdxs := make([]int64, 40)
	rg := g.Split("rand")
	for i := range randIdxs {
		randIdxs[i] = sp.RandomIndex(rg)
	}
	randBest := bestOf(randIdxs)
	if priorBest <= randBest {
		t.Fatalf("prior best %g ≤ random best %g on unseen GPU", priorBest, randBest)
	}
}

func TestDistributionsUnknownKind(t *testing.T) {
	m := &Model{Nets: map[workload.Kind]*nn.Network{}}
	task, err := workload.TaskByIndex(workload.AlexNet, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Distributions(task, hwspec.MustByName(hwspec.TitanXp)); err == nil {
		t.Fatal("missing head accepted")
	}
}
