package prior

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/nn"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// modelJSON is the serialized form of a trained prior generator.
type modelJSON struct {
	Emb  *blueprint.Embedding   `json:"embedding"`
	Nets map[string]*nn.Network `json:"nets"`
}

// kindNames maps template kinds to stable serialization keys.
var kindNames = map[workload.Kind]string{
	workload.Conv2D:         "conv2d",
	workload.WinogradConv2D: "winograd_conv2d",
	workload.Dense:          "dense",
}

// sortedKinds returns the keys of m in ascending kind order, so every
// walk over per-kind tables is deterministic.
func sortedKinds[V any](m map[workload.Kind]V) []workload.Kind {
	kinds := make([]workload.Kind, 0, len(m))
	for kind := range m {
		kinds = append(kinds, kind)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// MarshalJSON serializes the trained hypernetwork H.
func (m *Model) MarshalJSON() ([]byte, error) {
	v := modelJSON{Emb: m.Emb, Nets: map[string]*nn.Network{}}
	for _, kind := range sortedKinds(m.Nets) {
		name, ok := kindNames[kind]
		if !ok {
			return nil, fmt.Errorf("prior: cannot serialize head for kind %v", kind)
		}
		v.Nets[name] = m.Nets[kind]
	}
	return json.Marshal(v)
}

// UnmarshalJSON restores a serialized prior generator.
func (m *Model) UnmarshalJSON(data []byte) error {
	var v modelJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	if v.Emb == nil {
		return fmt.Errorf("prior: serialized model missing embedding")
	}
	kindByName := map[string]workload.Kind{}
	for kind, name := range kindNames {
		kindByName[name] = kind
	}
	names := make([]string, 0, len(v.Nets))
	for name := range v.Nets {
		names = append(names, name)
	}
	sort.Strings(names)
	m.Emb = v.Emb
	m.Nets = map[workload.Kind]*nn.Network{}
	for _, name := range names {
		kind, ok := kindByName[name]
		if !ok {
			return fmt.Errorf("prior: serialized model has unknown head %q", name)
		}
		m.Nets[kind] = v.Nets[name]
	}
	return nil
}
