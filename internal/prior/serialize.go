package prior

import (
	"encoding/json"
	"fmt"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/nn"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// modelJSON is the serialized form of a trained prior generator.
type modelJSON struct {
	Emb  *blueprint.Embedding   `json:"embedding"`
	Nets map[string]*nn.Network `json:"nets"`
}

// kindNames maps template kinds to stable serialization keys.
var kindNames = map[workload.Kind]string{
	workload.Conv2D:         "conv2d",
	workload.WinogradConv2D: "winograd_conv2d",
	workload.Dense:          "dense",
}

// MarshalJSON serializes the trained hypernetwork H.
func (m *Model) MarshalJSON() ([]byte, error) {
	v := modelJSON{Emb: m.Emb, Nets: map[string]*nn.Network{}}
	for kind, net := range m.Nets {
		name, ok := kindNames[kind]
		if !ok {
			return nil, fmt.Errorf("prior: cannot serialize head for kind %v", kind)
		}
		v.Nets[name] = net
	}
	return json.Marshal(v)
}

// UnmarshalJSON restores a serialized prior generator.
func (m *Model) UnmarshalJSON(data []byte) error {
	var v modelJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	if v.Emb == nil {
		return fmt.Errorf("prior: serialized model missing embedding")
	}
	m.Emb = v.Emb
	m.Nets = map[workload.Kind]*nn.Network{}
	for name, net := range v.Nets {
		found := false
		for kind, kn := range kindNames {
			if kn == name {
				m.Nets[kind] = net
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("prior: serialized model has unknown head %q", name)
		}
	}
	return nil
}
