// Comparison: every tuner in the paper, head to head on one layer.
//
// Random, AutoTVM (± transfer learning), Chameleon, DGP, and Glimpse tune
// the same task on the same simulated GPU with an equal measurement
// budget — a miniature of the paper's end-to-end evaluation (Fig. 9).
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func main() {
	const target = hwspec.RTX2080Ti
	g := rng.New(42)
	task, err := workload.TaskByIndex(workload.VGG16, 8) // 512→512 28×28 conv
	if err != nil {
		log.Fatal(err)
	}
	sp := space.MustForTask(task)
	m := measure.MustNewLocal(target)
	budget := tuner.Budget{MaxMeasurements: 160}

	// Transfer corpus for AutoTVM-TL and DGP: random measurements of the
	// same task on two other GPUs (leave-target-out).
	td := &tuner.TransferData{}
	for _, src := range []string{"gtx-1080-ti", "rtx-3070"} {
		sm := measure.MustNewLocal(src)
		sg := g.Split("transfer/" + src)
		for i := 0; i < 120; i++ {
			idx := sp.RandomIndex(sg)
			res, err := sm.MeasureBatch(task, sp, []int64{idx})
			if err != nil {
				log.Fatal(err)
			}
			v := 0.0
			if res[0].Valid {
				v = res[0].GFLOPS
			}
			td.Features = append(td.Features, sp.FeaturesAt(idx))
			td.GFLOPS = append(td.GFLOPS, v)
		}
	}

	fmt.Printf("training Glimpse toolkit for %s...\n", target)
	tk, err := core.TrainToolkit(target, core.ToolkitConfig{}, g.Split("toolkit"))
	if err != nil {
		log.Fatal(err)
	}

	tuners := []tuner.Tuner{
		tuner.Random{},
		tuner.AutoTVM{},
		tuner.AutoTVM{Transfer: td},
		tuner.Chameleon{},
		tuner.DGP{Source: td},
		tk.Tuner(),
	}

	table := metrics.NewTable(
		fmt.Sprintf("All tuners on %s / %s (%d measurements each)", target, task.Name(), budget.MaxMeasurements),
		"tuner", "best GFLOPS", "kernel ms", "invalid", "GPU s", "meas. to best")
	for _, tn := range tuners {
		res, err := tn.Tune(task, sp, m, budget, g.Split("run/"+tn.Name()))
		if err != nil {
			log.Fatal(err)
		}
		// How early did it lock in its final quality?
		toBest := res.Measurements
		for _, h := range res.History {
			if h.BestGFLOPS >= 0.99*res.BestGFLOPS {
				toBest = h.Measurements
				break
			}
		}
		table.AddRowf(res.TunerName,
			fmt.Sprintf("%.0f", res.BestGFLOPS), fmt.Sprintf("%.4f", res.BestTimeMS),
			res.Invalid, fmt.Sprintf("%.0f", res.GPUSeconds), toBest)
	}
	fmt.Print(table.String())
	fmt.Println("\nGlimpse should reach its final quality in the fewest measurements with the fewest invalid configs.")
}
