// Kernelgen: from schedule to "binary".
//
// Tunes one convolution briefly, then lowers the best configuration to the
// loop-nest kernel IR, statically verifies it against the target GPU's
// launch limits, and prints the generated CUDA-like source — the artifact
// at the end of the paper's Fig. 2 pipeline.
//
//	go run ./examples/kernelgen
package main

import (
	"fmt"
	"log"

	"github.com/neuralcompile/glimpse/internal/codegen"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func main() {
	const target = hwspec.RTX3090
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		log.Fatal(err)
	}
	sp := space.MustForTask(task)
	m := measure.MustNewLocal(target)

	fmt.Printf("tuning %s on %s...\n", task.Name(), target)
	res, err := tuner.AutoTVM{}.Tune(task, sp, m,
		tuner.Budget{MaxMeasurements: 128}, rng.New(3))
	if err != nil {
		log.Fatal(err)
	}
	cfg := sp.FromIndex(res.BestIndex)
	fmt.Printf("best: %.0f GFLOPS (%.4f ms)\nschedule: %s\n\n",
		res.BestGFLOPS, res.BestTimeMS, sp.Describe(cfg))

	kern, err := codegen.Lower(task, sp, cfg)
	if err != nil {
		log.Fatal(err)
	}
	spec := hwspec.MustByName(target)
	if errs := codegen.Verify(kern, spec); len(errs) > 0 {
		log.Fatalf("static verification failed: %v", errs)
	}
	fmt.Printf("static verification against %s: OK (grid=%d, block=%d, smem=%dB)\n\n",
		target, kern.GridDim(), kern.BlockDim(), kern.SharedMemBytes())
	fmt.Println(kern.Render())

	// The same schedule on a smaller-shared-memory generation may not even
	// launch — the Fig. 1 lesson, caught before wasting a compile.
	pascal := hwspec.MustByName(hwspec.TitanXp)
	if errs := codegen.Verify(kern, pascal); len(errs) > 0 {
		fmt.Printf("the same kernel on %s would NOT launch: %v\n", pascal.Name, errs)
	} else {
		fmt.Printf("the same kernel also verifies on %s\n", pascal.Name)
	}
}
