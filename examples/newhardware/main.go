// New hardware: onboarding a GPU nobody has ever tuned on.
//
// The promise of the Blueprint (§3.1) is that a *datasheet alone* carries
// enough architectural signal to seed the search. This example builds the
// Blueprint for a target GPU, inspects what the embedding preserves,
// generates prior distributions for a layer, and shows that the prior's
// first guesses are already strong — before any tuning loop runs.
//
//	go run ./examples/newhardware
package main

import (
	"fmt"
	"log"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/prior"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func main() {
	const target = hwspec.RTX3090 // treat the newest GPU as "never seen"
	g := rng.New(23)

	// 1. Build the Blueprint from the datasheet registry.
	dim := blueprint.DefaultDim()
	emb, err := blueprint.Build(hwspec.Registry(), dim)
	if err != nil {
		log.Fatal(err)
	}
	spec := hwspec.MustByName(target)
	vec := emb.Embed(spec)
	fmt.Printf("Blueprint(%s): %d numbers summarizing %d datasheet fields "+
		"(%.2f%% information loss over the registry)\n",
		target, dim, hwspec.FeatureDim, 100*blueprint.InformationLoss(hwspec.Registry(), emb))

	// The embedding is invertible enough to recover launch limits — the
	// basis of Hardware-Aware Sampling (§3.3).
	for _, f := range []string{"max_threads_per_block", "max_smem_per_block_kb", "mem_bw_gbs"} {
		v, err := emb.ReconstructFeature(vec, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  reconstructed %-24s ≈ %.0f\n", f, v)
	}

	// 2. Train the prior generator H on every *other* GPU.
	fmt.Println("\ntraining prior generator H on the training pool (target excluded)...")
	var tasks []workload.Task
	for _, model := range workload.Models {
		tasks = append(tasks, workload.MustTasks(model)...)
	}
	h, err := prior.Train(emb, hwspec.TrainingPool(target), tasks, prior.TrainConfig{}, g.Split("H"))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Ask H for prior distributions of a VGG-16 layer on the new GPU and
	//    measure its first 20 suggestions vs 20 uniform random configs.
	task, err := workload.TaskByIndex(workload.VGG16, 8)
	if err != nil {
		log.Fatal(err)
	}
	sp := space.MustForTask(task)
	dist, err := h.Distributions(task, spec)
	if err != nil {
		log.Fatal(err)
	}
	m := measure.MustNewLocal(target)
	best := func(idxs []int64) (float64, int) {
		results, err := m.MeasureBatch(task, sp, idxs)
		if err != nil {
			log.Fatal(err)
		}
		top, invalid := 0.0, 0
		for _, r := range results {
			if !r.Valid {
				invalid++
				continue
			}
			if r.GFLOPS > top {
				top = r.GFLOPS
			}
		}
		return top, invalid
	}
	priorBest, priorInvalid := best(dist.Sample(sp, 20, g.Split("prior")))
	rg := g.Split("rand")
	randIdxs := make([]int64, 20)
	for i := range randIdxs {
		randIdxs[i] = sp.RandomIndex(rg)
	}
	randBest, randInvalid := best(randIdxs)

	dev := gpusim.NewDevice(spec)
	fmt.Printf("\n%s on %s (peak %.0f GFLOPS):\n", task.Name(), target, dev.Spec.PeakGFLOPS)
	fmt.Printf("  20 prior-guided configs: best %.0f GFLOPS, %d invalid\n", priorBest, priorInvalid)
	fmt.Printf("  20 random configs:       best %.0f GFLOPS, %d invalid\n", randBest, randInvalid)
	fmt.Printf("  datasheet-only advantage: %.2fx\n", priorBest/randBest)
}
