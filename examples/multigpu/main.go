// Multi-GPU deployment: the paper's motivating scenario (§2.2).
//
// A deployment engineer must ship one model onto several GPU generations.
// Naively reusing the configuration tuned for one GPU loses double-digit
// performance on the others (Fig. 1); Glimpse instead tunes each target
// from its datasheet Blueprint with a handful of measurements.
//
//	go run ./examples/multigpu
package main

import (
	"fmt"
	"log"

	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func main() {
	g := rng.New(11)
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		log.Fatal(err)
	}
	sp := space.MustForTask(task)

	// Tune once on the "home" GPU the old-fashioned way.
	home := hwspec.TitanXp
	fmt.Printf("tuning %s on home GPU %s with AutoTVM...\n", task.Name(), home)
	homeRes, err := tuner.AutoTVM{}.Tune(task, sp, measure.MustNewLocal(home),
		tuner.Budget{MaxMeasurements: 192}, g.Split("home"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("home best: %.0f GFLOPS\n\n", homeRes.BestGFLOPS)

	table := metrics.NewTable("Deploying to other generations",
		"target", "reuse home config", "glimpse (64 meas.)", "reuse loss vs glimpse")
	budget := tuner.Budget{MaxMeasurements: 64}
	for _, target := range []string{hwspec.RTX2070Super, hwspec.RTX2080Ti, hwspec.RTX3090} {
		dev := gpusim.NewDevice(hwspec.MustByName(target))
		reused := dev.MeasureIndex(task, sp, homeRes.BestIndex)
		reusedStr := "launch failed"
		reusedG := 0.0
		if reused.Valid {
			reusedG = reused.GFLOPS
			reusedStr = fmt.Sprintf("%.0f GFLOPS", reusedG)
		}

		tk, err := core.TrainToolkit(target, core.ToolkitConfig{}, g.Split("toolkit/"+target))
		if err != nil {
			log.Fatal(err)
		}
		res, err := tk.Tuner().Tune(task, sp, measure.MustNewLocal(target), budget, g.Split("tune/"+target))
		if err != nil {
			log.Fatal(err)
		}
		loss := "n/a"
		if reusedG > 0 {
			loss = fmt.Sprintf("%.1f%%", 100*(1-reusedG/res.BestGFLOPS))
		}
		table.AddRowf(target, reusedStr, fmt.Sprintf("%.0f GFLOPS", res.BestGFLOPS), loss)
	}
	fmt.Print(table.String())
	fmt.Println("\nReuse leaves double-digit performance on the table (or fails to launch);")
	fmt.Println("Glimpse recovers it with a few dozen Blueprint-guided measurements per target.")
}
