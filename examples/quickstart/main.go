// Quickstart: tune a single convolution task on one GPU with Glimpse.
//
// It trains the offline artifacts (Blueprint embedding, prior generator H,
// meta-learned acquisition) on every GPU except the target, then tunes
// ResNet-18's 7th task on the never-measured target — the paper's core
// transfer setting — and compares the result against random search.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func main() {
	const target = hwspec.TitanXp
	g := rng.New(7)

	// 1. Pick a task: ResNet-18's L7 convolution (the paper's Fig. 1 layer).
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		log.Fatal(err)
	}
	sp := space.MustForTask(task)
	fmt.Printf("task %s: %d-knob space with %d configurations\n",
		task.Name(), sp.NumKnobs(), sp.Size())

	// 2. Train Glimpse's offline artifacts, leaving the target GPU out.
	fmt.Println("training offline artifacts (blueprint + prior + acquisition)...")
	tk, err := core.TrainToolkit(target, core.ToolkitConfig{}, g.Split("toolkit"))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Tune on the (simulated) target hardware.
	m := measure.MustNewLocal(target)
	budget := tuner.Budget{MaxMeasurements: 128, Patience: 4, Epsilon: 0.01}
	res, err := tk.Tuner().Tune(task, sp, m, budget, g.Split("tune"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("glimpse: best %.0f GFLOPS (kernel %.4f ms) after %d measurements, %d invalid, %.0f GPU-seconds\n",
		res.BestGFLOPS, res.BestTimeMS, res.Measurements, res.Invalid, res.GPUSeconds)
	fmt.Printf("best schedule: %s\n", sp.Describe(sp.FromIndex(res.BestIndex)))

	// 4. Reference: random search with the same budget.
	rres, err := tuner.Random{}.Tune(task, sp, m, budget, g.Split("random"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random:  best %.0f GFLOPS after %d measurements (%d invalid)\n",
		rres.BestGFLOPS, rres.Measurements, rres.Invalid)
	fmt.Printf("glimpse advantage: %.2fx better code, %.1fx fewer invalid measurements\n",
		res.BestGFLOPS/rres.BestGFLOPS,
		float64(rres.Invalid+1)/float64(res.Invalid+1))
}
